"""Crossbar-set math (Eq. 1) and weight mapping.

A *crossbar set* is the group of crossbars holding one copy of one layer's
weights (Fig. 1). Eq. 1::

    set = ceil(WK*WK*CI / XbSize) * ceil(CO / XbSize)
          * ceil(PrecWt / ResRram)

The three factors are the row tiling (one filter needs ``WK^2*CI`` rows),
the column tiling (``CO`` filters), and weight bit-slicing across cells of
``ResRram`` bits. :func:`map_layer_weights` materializes the actual tile
layout, which the IR builder uses to size ``load``/``merge`` operands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError, ModelError
from repro.nn.layers import ConvLayer, FCLayer, Layer
from repro.utils.mathutils import ceil_div


def _layer_rows_cols(layer: Layer) -> tuple:
    """(rows, cols) a single weight copy occupies before bit-slicing."""
    if isinstance(layer, ConvLayer):
        return layer.weight_rows, layer.out_channels
    if isinstance(layer, FCLayer):
        return layer.in_features, layer.out_features
    raise ModelError(
        f"{layer.name}: only weighted layers map onto crossbars"
    )


def crossbar_set_size(
    layer: Layer, xb_size: int, res_rram: int, weight_precision: int = 16
) -> int:
    """Eq. 1: number of crossbars in one crossbar set for ``layer``."""
    if xb_size <= 0:
        raise ConfigurationError(f"XbSize must be positive, got {xb_size}")
    if res_rram <= 0:
        raise ConfigurationError(f"ResRram must be positive, got {res_rram}")
    rows, cols = _layer_rows_cols(layer)
    return (
        ceil_div(rows, xb_size)
        * ceil_div(cols, xb_size)
        * ceil_div(weight_precision, res_rram)
    )


def crossbars_for_layer(
    layer: Layer,
    wt_dup: int,
    xb_size: int,
    res_rram: int,
    weight_precision: int = 16,
) -> int:
    """Crossbars consumed by a layer: ``WtDup_i * set_i`` (Eq. 2 LHS)."""
    if wt_dup <= 0:
        raise ConfigurationError(f"WtDup must be positive, got {wt_dup}")
    return wt_dup * crossbar_set_size(layer, xb_size, res_rram,
                                      weight_precision)


def required_adc_resolution(
    rows_used: int, res_rram: int, res_dac: int,
    min_resolution: int = 7, max_resolution: int = 14,
) -> int:
    """Minimum ADC resolution for lossless readout, per ISAAC.

    The paper sets ADC resolution "to satisfy the minimum resolution
    requirement according to [2]" (§III). ISAAC's encoding scheme (flip
    the weight bits so the worst-case column sum is offset-cancelled)
    needs ``log2(rows) + ResRram + ResDAC - 2`` bits: its published
    design point — 128 rows, 2-bit cells, 1-bit input — uses exactly an
    8-bit ADC, which this rule reproduces. The naive bound
    ``log2(rows * (2^v-1) * (2^d-1))`` would be one bit higher.
    Clamped into Table III's 7-14 range (an ADC below 7 bits is not in
    the component library; the cap mirrors Table III's top entry).
    """
    if rows_used <= 0:
        raise ConfigurationError("rows_used must be positive")
    if res_rram <= 0 or res_dac <= 0:
        raise ConfigurationError("resolutions must be positive")
    needed = math.ceil(math.log2(rows_used)) + res_rram + res_dac - 2
    needed = max(1, needed)
    if needed > max_resolution:
        needed = max_resolution
    return max(min_resolution, needed)


@dataclass(frozen=True)
class CrossbarTilingSummary:
    """The tile *counts* of one weight copy, without the tiles.

    Exactly the numbers :class:`CrossbarSet` derives from its
    materialized tiles (``row_tiles`` is the count of distinct row
    ranges, i.e. ``ceil(rows / XbSize)``, and so on), computed in O(1)
    arithmetic. The DSE hot paths (spec geometry, the grid bound
    evaluator) only ever need these counts — materializing and then
    discarding ``O(set)`` tile objects per layer per task was a
    measurable share of cold synthesis. ``tests`` pin the equivalence
    against :func:`map_layer_weights` across the zoo's layer shapes.
    """

    row_tiles: int
    col_tiles: int
    bit_slices: int

    @property
    def num_crossbars(self) -> int:
        """Eq. 1: the product of the three tiling factors."""
        return self.row_tiles * self.col_tiles * self.bit_slices


def crossbar_tiling_summary(
    layer: Layer, xb_size: int, res_rram: int, weight_precision: int = 16
) -> CrossbarTilingSummary:
    """Tile counts of :func:`map_layer_weights`, without materializing."""
    if xb_size <= 0:
        raise ConfigurationError(f"XbSize must be positive, got {xb_size}")
    if res_rram <= 0:
        raise ConfigurationError(f"ResRram must be positive, got {res_rram}")
    rows, cols = _layer_rows_cols(layer)
    return CrossbarTilingSummary(
        row_tiles=ceil_div(rows, xb_size),
        col_tiles=ceil_div(cols, xb_size),
        bit_slices=ceil_div(weight_precision, res_rram),
    )


@dataclass(frozen=True)
class CrossbarTile:
    """One crossbar's slice of a layer's weight matrix."""

    row_start: int
    row_end: int  # exclusive
    col_start: int
    col_end: int  # exclusive
    bit_slice: int  # which ResRram-bit slice of the weights

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start

    @property
    def cols(self) -> int:
        return self.col_end - self.col_start


@dataclass(frozen=True)
class CrossbarSet:
    """The tile layout of one weight copy of one layer."""

    layer_name: str
    xb_size: int
    res_rram: int
    weight_precision: int
    tiles: tuple

    @property
    def num_crossbars(self) -> int:
        return len(self.tiles)

    @property
    def row_tiles(self) -> int:
        return len({(t.row_start, t.row_end) for t in self.tiles})

    @property
    def col_tiles(self) -> int:
        return len({(t.col_start, t.col_end) for t in self.tiles})

    @property
    def bit_slices(self) -> int:
        return len({t.bit_slice for t in self.tiles})


def map_layer_weights(
    layer: Layer, xb_size: int, res_rram: int, weight_precision: int = 16
) -> CrossbarSet:
    """Materialize the Eq. 1 tiling as explicit crossbar tiles.

    Tiles are produced bit-slice-major, then row-major, then col-major;
    the count always equals :func:`crossbar_set_size` (tested invariant).
    """
    rows, cols = _layer_rows_cols(layer)
    n_bit_slices = ceil_div(weight_precision, res_rram)
    tiles: List[CrossbarTile] = []
    for bit_slice in range(n_bit_slices):
        for row_start in range(0, rows, xb_size):
            for col_start in range(0, cols, xb_size):
                tiles.append(
                    CrossbarTile(
                        row_start=row_start,
                        row_end=min(row_start + xb_size, rows),
                        col_start=col_start,
                        col_end=min(col_start + xb_size, cols),
                        bit_slice=bit_slice,
                    )
                )
    return CrossbarSet(
        layer_name=layer.name,
        xb_size=xb_size,
        res_rram=res_rram,
        weight_precision=weight_precision,
        tiles=tuple(tiles),
    )
