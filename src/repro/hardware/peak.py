"""Architecture-level peak power efficiency (the Table IV metric).

Peak power efficiency is a property of an architecture *configuration*:
the ops/W it sustains with every crossbar computing back-to-back and the
converter path keeping up. Two provisioning regimes matter:

- **Matched** (what a synthesis flow can choose): ADCs are provisioned
  exactly to drain the crossbars' conversion demand, so neither side
  idles. PIMSYN's Table IV entry is the best matched configuration over
  its design space.
- **Fixed** (what manual designs shipped): the design's
  ADC-per-crossbar ratio is a constant; if it under-provisions, the
  crossbars stall (ops scale by the supply/demand ratio) and if it
  over-provisions, the surplus converters burn power at idle.

Both regimes price one crossbar "bundle": the crossbar, its DACs and
sample-holds, its converter share, and its amortized slice of macro
overhead (eDRAM, NoC router, registers, ALUs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hardware.crossbar import required_adc_resolution
from repro.hardware.params import (
    HardwareParams,
    RESDAC_CHOICES,
    RESRRAM_CHOICES,
    XBSIZE_CHOICES,
)
from repro.utils.mathutils import ceil_div


@dataclass(frozen=True)
class PeakPoint:
    """One configuration's peak operating point."""

    xb_size: int
    res_rram: int
    res_dac: int
    adc_resolution: int
    ops_per_second_per_crossbar: float
    bundle_power: float  # watts per crossbar with peripherals
    tops_per_watt: float


def dense_mvm_reads(
    weight_precision: int, res_rram: int, act_precision: int, res_dac: int
) -> int:
    """Analog reads to complete one full-precision MVM.

    Weight bits are sliced across ``ceil(PrecWt/ResRram)`` crossbars and
    activations streamed over ``ceil(PrecAct/ResDAC)`` bit iterations;
    the product is the read count one 16b x 16b MVM costs.
    """
    return ceil_div(weight_precision, res_rram) * ceil_div(
        act_precision, res_dac
    )


def crossbar_ops_rate(
    xb_size: int,
    res_rram: int,
    res_dac: int,
    params: HardwareParams,
    weight_precision: int = 16,
    act_precision: int = 16,
) -> float:
    """Dense ops/s one crossbar sustains (2 ops per MAC)."""
    reads = dense_mvm_reads(
        weight_precision, res_rram, act_precision, res_dac
    )
    return 2.0 * xb_size * xb_size / (reads * params.crossbar_latency)


def adc_demand_per_crossbar(
    xb_size: int, params: HardwareParams
) -> float:
    """Conversions/s one busy crossbar generates (one per column/read)."""
    return xb_size / params.crossbar_latency


def matched_peak_point(
    xb_size: int,
    res_rram: int,
    res_dac: int,
    params: HardwareParams,
    weight_precision: int = 16,
    act_precision: int = 16,
    macro_overhead_per_crossbar: Optional[float] = None,
) -> PeakPoint:
    """Peak point with ADCs provisioned exactly to crossbar demand."""
    if macro_overhead_per_crossbar is None:
        # A lean macro of 64 crossbars with a modest ALU complement.
        macro_overhead_per_crossbar = (
            params.edram_power + params.noc_power
            + params.register_power_per_macro
            + 16 * params.alu_power
        ) / 64.0

    adc_lo, adc_hi = params.adc_resolution_range
    resolution = required_adc_resolution(
        xb_size, res_rram, res_dac,
        min_resolution=adc_lo, max_resolution=adc_hi,
    )
    adcs = adc_demand_per_crossbar(xb_size, params) / params.adc_sample_rate
    bundle = (
        params.crossbar_power_of(xb_size)
        + xb_size * (
            params.dac_power_of(res_dac) + params.sample_hold_power
        )
        + adcs * params.adc_power_of(resolution)
        + macro_overhead_per_crossbar
    )
    ops = crossbar_ops_rate(
        xb_size, res_rram, res_dac, params, weight_precision,
        act_precision,
    )
    if bundle <= 0:
        raise ConfigurationError("non-positive bundle power")
    return PeakPoint(
        xb_size=xb_size,
        res_rram=res_rram,
        res_dac=res_dac,
        adc_resolution=resolution,
        ops_per_second_per_crossbar=ops,
        bundle_power=bundle,
        tops_per_watt=ops / bundle / 1e12,
    )


def fixed_peak_point(
    xb_size: int,
    res_rram: int,
    res_dac: int,
    adcs_per_crossbar: float,
    adc_resolution: int,
    macro_overhead_per_crossbar: float,
    params: HardwareParams,
    weight_precision: int = 16,
    act_precision: int = 16,
    conversion_overhead: float = 1.0,
) -> PeakPoint:
    """Peak point of a manual design's fixed provisioning.

    ``conversion_overhead`` multiplies the conversion demand (e.g.
    PipeLayer's spike integration, AtomLayer's row rotation), throttling
    achievable ops when the fixed ADC supply cannot keep up.
    """
    if adcs_per_crossbar <= 0:
        raise ConfigurationError("adcs_per_crossbar must be positive")
    demand = (
        adc_demand_per_crossbar(xb_size, params) * conversion_overhead
    )
    supply = adcs_per_crossbar * params.adc_sample_rate
    duty = min(1.0, supply / demand)
    ops = (
        crossbar_ops_rate(
            xb_size, res_rram, res_dac, params, weight_precision,
            act_precision,
        )
        * duty / conversion_overhead
    )
    bundle = (
        params.crossbar_power_of(xb_size)
        + xb_size * (
            params.dac_power_of(res_dac) + params.sample_hold_power
        )
        + adcs_per_crossbar * params.adc_power_of(adc_resolution)
        + macro_overhead_per_crossbar
    )
    return PeakPoint(
        xb_size=xb_size,
        res_rram=res_rram,
        res_dac=res_dac,
        adc_resolution=adc_resolution,
        ops_per_second_per_crossbar=ops,
        bundle_power=bundle,
        tops_per_watt=ops / bundle / 1e12,
    )


def best_matched_peak(
    params: HardwareParams,
    xb_sizes: Optional[Iterable[int]] = None,
    res_rrams: Optional[Iterable[int]] = None,
    res_dacs: Optional[Iterable[int]] = None,
    weight_precision: int = 16,
    act_precision: int = 16,
) -> PeakPoint:
    """The best matched peak over a design-space grid.

    This is the number a synthesis flow reports as *its* peak power
    efficiency (Table IV's PIMSYN column): the search is free to pick
    the configuration, manual designs are not. Grids left ``None``
    default to the domains of the technology profile ``params`` was
    built from (the Table I constants for ``reram``); a hand-rolled
    ``HardwareParams`` whose ``technology`` names no registered
    profile falls back to the Table I grids.
    """
    if None in (xb_sizes, res_rrams, res_dacs):
        try:
            from repro.hardware.tech import get_technology

            profile = get_technology(params.technology)
            domains = (profile.xb_size_choices,
                       profile.res_rram_choices,
                       profile.res_dac_choices)
        except ConfigurationError:
            domains = (XBSIZE_CHOICES, RESRRAM_CHOICES, RESDAC_CHOICES)
        xb_sizes = domains[0] if xb_sizes is None else xb_sizes
        res_rrams = domains[1] if res_rrams is None else res_rrams
        res_dacs = domains[2] if res_dacs is None else res_dacs
    best: Optional[PeakPoint] = None
    for xb in xb_sizes:
        for rram in res_rrams:
            for dac in res_dacs:
                point = matched_peak_point(
                    xb, rram, dac, params, weight_precision,
                    act_precision,
                )
                if best is None or point.tops_per_watt > best.tops_per_watt:
                    best = point
    if best is None:
        raise ConfigurationError("empty design-space grid")
    return best
