"""2-D mesh network-on-chip model.

Macros are interconnected through a NoC (Fig. 2a). The model here is the
standard analytic mesh: macros placed on a near-square grid in row-major
layer order, XY dimension-ordered routing, per-hop router latency plus
serialization time at the flit width. This supplies the latencies of the
``transfer`` and ``merge`` inter-macro IRs (Table II).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams
from repro.utils.mathutils import ceil_div


@dataclass(frozen=True)
class MeshNoC:
    """An ``rows x cols`` mesh of routers, one macro per router."""

    num_macros: int
    params: HardwareParams

    def __post_init__(self) -> None:
        if self.num_macros <= 0:
            raise ConfigurationError("NoC needs at least one macro")

    @property
    def cols(self) -> int:
        return max(1, math.ceil(math.sqrt(self.num_macros)))

    @property
    def rows(self) -> int:
        return ceil_div(self.num_macros, self.cols)

    def position(self, macro_id: int) -> Tuple[int, int]:
        """Row-major (row, col) placement of a macro index."""
        if not 0 <= macro_id < self.num_macros:
            raise ConfigurationError(
                f"macro id {macro_id} out of range [0, {self.num_macros})"
            )
        return divmod(macro_id, self.cols)

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count under XY routing."""
        (r1, c1), (r2, c2) = self.position(src), self.position(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def xy_route(self, src: int, dst: int) -> Tuple[Tuple[int, int], ...]:
        """Directed router-to-router links of the XY route ``src -> dst``.

        Dimension-ordered: the packet first corrects its column (X),
        then its row (Y). Each element is a ``(from_node, to_node)``
        pair where nodes are identified by their row-major grid index
        (``row * cols + col``) — for off-grid filler positions this can
        exceed ``num_macros - 1``, which is fine for occupancy keys.
        The cycle simulator claims these links for the duration of a
        transfer; ``len(route) == self.hops(src, dst)``.
        """
        (r1, c1), (r2, c2) = self.position(src), self.position(dst)
        links: List[Tuple[int, int]] = []
        row, col = r1, c1
        step = 1 if c2 > col else -1
        while col != c2:
            here = row * self.cols + col
            col += step
            links.append((here, row * self.cols + col))
        step = 1 if r2 > row else -1
        while row != r2:
            here = row * self.cols + col
            row += step
            links.append((here, row * self.cols + col))
        return tuple(links)

    def transfer_latency(self, src: int, dst: int, num_bytes: int) -> float:
        """Latency of moving ``num_bytes`` from ``src`` to ``dst``.

        Head latency (hops x per-hop) plus serialization of the payload
        at one port's bandwidth; wormhole routing overlaps the two, so
        the payload term is not multiplied by hop count.
        """
        if num_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        if src == dst or num_bytes == 0:
            return 0.0
        head = self.hops(src, dst) * self.params.noc_hop_latency
        serialization = num_bytes / self.params.noc_port_bandwidth
        return head + serialization

    def merge_latency(self, macro_ids: List[int], num_bytes: int) -> float:
        """Latency of an all-to-one partial-sum merge (the ``merge`` IR).

        Modeled as a binary reduction tree over the participating macros:
        ``ceil(log2(n))`` rounds, each a worst-case-distance transfer of
        the full operand.
        """
        if len(macro_ids) <= 1 or num_bytes == 0:
            return 0.0
        rounds = math.ceil(math.log2(len(macro_ids)))
        worst = max(
            self.transfer_latency(a, b, num_bytes)
            for a in macro_ids
            for b in macro_ids
            if a != b
        )
        return rounds * worst

    def total_power(self) -> float:
        """Aggregate router power (one router per macro)."""
        return self.num_macros * self.params.noc_power

    def bisection_bandwidth(self) -> float:
        """Bytes/second crossing the mesh bisection (reporting metric)."""
        return min(self.rows, self.cols) * self.params.noc_port_bandwidth

    def average_hops(self) -> float:
        """Mean hop distance over all ordered macro pairs (reporting)."""
        if self.num_macros == 1:
            return 0.0
        total = 0
        count = 0
        for a in range(self.num_macros):
            for b in range(self.num_macros):
                if a != b:
                    total += self.hops(a, b)
                    count += 1
        return total / count


def neighbor_distance_hops(
    macro_of_layer: Dict[int, List[int]], producer: int, consumer: int,
    noc: MeshNoC,
) -> int:
    """Minimum hop distance between any macro of two layers' macro groups.

    Used to price inter-layer activation ``transfer`` IRs when layers own
    multiple macros each: the dataflow sends each activation from the
    producing macro to the nearest consuming macro.
    """
    src_macros = macro_of_layer.get(producer, [])
    dst_macros = macro_of_layer.get(consumer, [])
    if not src_macros or not dst_macros:
        return 0
    return min(noc.hops(s, d) for s in src_macros for d in dst_macros)
