"""Hardware setup parameters (Table III), with provenance.

The paper gives Table III as ranges and defers the remaining constants to
ISAAC [2] and MNSIM [15]. This module pins every constant the synthesis
flow needs, re-derived as documented below. All powers are in watts,
latencies in seconds, energies in joules, areas in mm^2.

Derivations
-----------
- **ReRAM crossbar** read power: Table III gives 0.3-4.8 mW across sizes
  128/256/512. Read power scales with cell count, i.e. ~4x per size
  doubling, which reproduces the published endpoints exactly:
  128 -> 0.3 mW, 256 -> 1.2 mW, 512 -> 4.8 mW. Cell resolution does not
  change read power to first order (same array current); it changes the
  number of crossbars needed via Eq. 1.
- **Crossbar MVM latency**: 100 ns per in-situ read (ISAAC).
- **DAC**: Table III gives 4-30 uW for resolutions 1/2/4; intermediate
  point interpolated geometrically (2-bit ~= 11 uW).
- **ADC**: Table III gives 2-54 mW for resolutions 7-14. We interpolate
  geometrically: P(r) = 2 mW * (54/2)^((r-7)/7), i.e. ~1.6x per bit.
  Sample rate 1.2 GS/s (ISAAC's 8-bit ADC); held constant across
  resolutions for simplicity (resolution cost is carried by power).
- **eDRAM scratchpad**: 64 KB, 256-bit bus, 20.7 mW (Table III). Bus at
  1 GHz -> 32 GB/s per macro.
- **NoC router**: 32-bit flits, 8 ports, 42 mW (Table III); 1 GHz ->
  4 GB/s per port, 1 cycle per hop plus serialization.
- **ALU (shift-and-add / pooling / ReLU)**: ISAAC's S+A unit, 0.2 mW at
  1 GHz, one element operation per cycle.
- **Sample & hold**: ISAAC, ~10 uW per 128 units -> 0.08 uW each.
- **Register files**: ISAAC input/output registers ~1.47 mW per macro.
- **Areas** (reporting only): ISAAC table 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError

# Exploration domains of Table I / Table III for the paper's ReRAM
# device. These module constants are the ``reram`` technology profile's
# domains (see :mod:`repro.hardware.tech`); other technologies carry
# their own domains on their profiles — prefer
# ``get_technology(name).xb_size_choices`` etc. in new code.
XBSIZE_CHOICES: Tuple[int, ...] = (128, 256, 512)
RESRRAM_CHOICES: Tuple[int, ...] = (1, 2, 4)
RESDAC_CHOICES: Tuple[int, ...] = (1, 2, 4)
ADC_RESOLUTION_RANGE: Tuple[int, int] = (7, 14)
RATIO_RRAM_RANGE: Tuple[float, float] = (0.1, 0.4)


def _default_crossbar_power() -> Dict[int, float]:
    # 4x per size doubling, anchored at the Table III endpoints.
    return {128: 0.3e-3, 256: 1.2e-3, 512: 4.8e-3}


def _default_dac_power() -> Dict[int, float]:
    # Table III endpoints 4 uW (1-bit) and 30 uW (4-bit), geometric midpoint.
    return {1: 4e-6, 2: 11e-6, 4: 30e-6}


def _default_adc_power() -> Dict[int, float]:
    low, high = ADC_RESOLUTION_RANGE
    base, top = 2e-3, 54e-3
    ratio = (top / base) ** (1.0 / (high - low))
    return {r: base * ratio ** (r - low) for r in range(low, high + 1)}


@dataclass
class HardwareParams:
    """All device/circuit constants consumed by the synthesis flow.

    Every field has the Table III / ISAAC / MNSIM default; tests and
    users may override any of them to model a different technology.
    """

    # -- ReRAM crossbar --------------------------------------------------
    crossbar_power: Dict[int, float] = field(
        default_factory=_default_crossbar_power
    )
    crossbar_latency: float = 100e-9  # one in-situ MVM read
    crossbar_area: Dict[int, float] = field(
        default_factory=lambda: {128: 0.0025, 256: 0.01, 512: 0.04}
    )

    # -- DAC -------------------------------------------------------------
    dac_power: Dict[int, float] = field(default_factory=_default_dac_power)
    dac_latency: float = 1e-9
    dac_area: float = 1.67e-7  # per DAC

    # -- ADC -------------------------------------------------------------
    adc_power: Dict[int, float] = field(default_factory=_default_adc_power)
    adc_sample_rate: float = 1.2e9  # samples/s
    adc_area: float = 0.0012  # per ADC (8-bit reference point)

    # -- eDRAM scratchpad (per macro) -------------------------------------
    edram_size_bytes: int = 64 * 1024
    edram_bus_bits: int = 256
    edram_power: float = 20.7e-3
    edram_frequency: float = 1e9
    edram_area: float = 0.083

    # -- NoC router (per macro) -------------------------------------------
    noc_flit_bits: int = 32
    noc_ports: int = 8
    noc_power: float = 42e-3
    noc_frequency: float = 1e9
    noc_hop_latency: float = 1e-9
    noc_area: float = 0.151

    # -- ALU (shift-and-add / pooling / ReLU vector unit) ------------------
    alu_power: float = 0.2e-3
    alu_frequency: float = 1e9
    alu_area: float = 6e-5

    # -- sample & hold, registers ------------------------------------------
    sample_hold_power: float = 0.08e-6  # per unit (one per crossbar column)
    sample_hold_area: float = 3e-8
    register_power_per_macro: float = 1.47e-3
    register_area_per_macro: float = 0.0043

    # -- quantification (paper: 16-bit) ------------------------------------
    act_precision: int = 16
    weight_precision: int = 16

    # -- provenance --------------------------------------------------------
    #: Name of the :class:`repro.hardware.tech.TechnologyProfile` these
    #: constants came from. Participates in content fingerprints (the
    #: default is skipped for key stability — see
    #: :func:`repro.core.executor.params_fingerprint`), so two
    #: technologies never share memoized evaluations or stored results.
    technology: str = "reram"

    def __post_init__(self) -> None:
        if self.crossbar_latency <= 0:
            raise ConfigurationError("crossbar latency must be positive")
        if self.adc_sample_rate <= 0:
            raise ConfigurationError("ADC sample rate must be positive")
        if not self.adc_power:
            raise ConfigurationError("adc_power table must be non-empty")
        for size in self.crossbar_power:
            if size <= 0 or self.crossbar_power[size] <= 0:
                raise ConfigurationError(f"bad crossbar power entry {size}")
        if self.act_precision <= 0 or self.weight_precision <= 0:
            raise ConfigurationError("precisions must be positive")

    # ------------------------------------------------------------------
    # Technology routing
    # ------------------------------------------------------------------
    @classmethod
    def from_technology(cls, technology) -> "HardwareParams":
        """Materialize the params of a technology profile (or name).

        The canonical construction path: every layer of the flow that
        needs hardware constants receives a ``HardwareParams`` built
        here (directly or via :func:`repro.hardware.tech.
        default_params`), so the device is always an explicit,
        content-keyed choice. ``HardwareParams.from_technology("reram")``
        equals a default-constructed ``HardwareParams()`` field for
        field — the pre-profile behavior is the default profile.
        """
        from repro.hardware.tech import get_technology

        profile = get_technology(technology)
        return cls(technology=profile.name, **profile.device_constants())

    # ------------------------------------------------------------------
    # Lookups with validation
    # ------------------------------------------------------------------
    def crossbar_power_of(self, xb_size: int) -> float:
        """Read power of one crossbar of ``xb_size`` x ``xb_size`` cells."""
        if xb_size not in self.crossbar_power:
            raise ConfigurationError(
                f"no crossbar power for size {xb_size}; "
                f"known sizes: {sorted(self.crossbar_power)}"
            )
        return self.crossbar_power[xb_size]

    def dac_power_of(self, resolution: int) -> float:
        """Power of one DAC at the given resolution."""
        if resolution not in self.dac_power:
            raise ConfigurationError(
                f"no DAC power for resolution {resolution}; "
                f"known: {sorted(self.dac_power)}"
            )
        return self.dac_power[resolution]

    def adc_power_of(self, resolution: int) -> float:
        """Power of one ADC at the given resolution."""
        if resolution not in self.adc_power:
            raise ConfigurationError(
                f"no ADC power for resolution {resolution}; "
                f"known: {sorted(self.adc_power)}"
            )
        return self.adc_power[resolution]

    @property
    def adc_resolution_range(self) -> Tuple[int, int]:
        """(min, max) ADC resolution this technology's curve covers.

        Derived from the ``adc_power`` table so it can never disagree
        with the curve; :func:`repro.hardware.crossbar.
        required_adc_resolution` clamps into this range.
        """
        return (min(self.adc_power), max(self.adc_power))

    @property
    def edram_bandwidth(self) -> float:
        """Scratchpad bandwidth in bytes/second."""
        return self.edram_bus_bits / 8 * self.edram_frequency

    @property
    def noc_port_bandwidth(self) -> float:
        """One NoC port's bandwidth in bytes/second."""
        return self.noc_flit_bits / 8 * self.noc_frequency

    def dacs_per_pe(self, xb_size: int) -> int:
        """One DAC per crossbar word line (Fig. 2c)."""
        return xb_size

    def sample_holds_per_pe(self, xb_size: int) -> int:
        """One S&H per crossbar bit line (Fig. 2c)."""
        return xb_size

    def act_bit_iterations(self, res_dac: int) -> int:
        """Bit-serial iterations per computation block.

        If activation precision exceeds the DAC resolution, inputs are
        streamed ``ceil(PrecAct / ResDAC)`` bits at a time (§II-A).
        """
        if res_dac <= 0:
            raise ConfigurationError("DAC resolution must be positive")
        return math.ceil(self.act_precision / res_dac)
