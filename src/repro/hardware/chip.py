"""Full-accelerator assembly, power and area reporting.

The :class:`Accelerator` is the hardware half of a synthesis solution:
the list of macros (identical or specialized), the NoC that connects
them, and the mapping from weighted layers to macro groups. It validates
the paper's structural rules and produces the power/area breakdowns the
experiment harnesses report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.hardware.macro import MacroConfig
from repro.hardware.noc import MeshNoC
from repro.hardware.params import HardwareParams


@dataclass(frozen=True)
class PowerReport:
    """Per-resource power breakdown in watts."""

    crossbars: float
    dacs: float
    sample_holds: float
    adcs: float
    alus: float
    edram: float
    noc: float
    registers: float

    @property
    def total(self) -> float:
        return (
            self.crossbars + self.dacs + self.sample_holds + self.adcs
            + self.alus + self.edram + self.noc + self.registers
        )

    @property
    def peripheral_fraction(self) -> float:
        """Fraction of power consumed outside the crossbars.

        The paper's motivation cites >60% peripheral power in manual
        designs (§I); this metric lets experiments check where a
        synthesized design landed.
        """
        if self.total == 0:
            return 0.0
        return 1.0 - self.crossbars / self.total

    def as_dict(self) -> Dict[str, float]:
        return {
            "crossbars": self.crossbars,
            "dacs": self.dacs,
            "sample_holds": self.sample_holds,
            "adcs": self.adcs,
            "alus": self.alus,
            "edram": self.edram,
            "noc": self.noc,
            "registers": self.registers,
            "total": self.total,
        }


@dataclass(frozen=True)
class AreaReport:
    """Per-resource area breakdown in mm^2."""

    crossbars: float
    dacs: float
    sample_holds: float
    adcs: float
    alus: float
    edram: float
    noc: float
    registers: float

    @property
    def total(self) -> float:
        return (
            self.crossbars + self.dacs + self.sample_holds + self.adcs
            + self.alus + self.edram + self.noc + self.registers
        )


@dataclass
class Accelerator:
    """A complete synthesized PIM accelerator.

    Parameters
    ----------
    macros:
        All macros on the chip; ``macro_id`` must equal list position.
    params:
        The technology constants the chip was synthesized against.
    layer_macros:
        For each weighted layer index, the macro ids executing it.
    """

    macros: Sequence[MacroConfig]
    params: HardwareParams
    layer_macros: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.macros:
            raise ConfigurationError("accelerator needs at least one macro")
        for position, macro in enumerate(self.macros):
            if macro.macro_id != position:
                raise ConfigurationError(
                    f"macro at position {position} has id {macro.macro_id}"
                )
        for layer, ids in self.layer_macros.items():
            if not ids:
                raise ConfigurationError(f"layer {layer} owns no macros")
            for mid in ids:
                if not 0 <= mid < len(self.macros):
                    raise ConfigurationError(
                        f"layer {layer} references macro {mid} out of range"
                    )
                if layer not in self.macros[mid].layer_indices:
                    raise ConfigurationError(
                        f"macro {mid} does not list layer {layer}"
                    )

    @property
    def num_macros(self) -> int:
        return len(self.macros)

    @property
    def num_crossbars(self) -> int:
        return sum(m.num_crossbars for m in self.macros)

    @property
    def noc(self) -> MeshNoC:
        return MeshNoC(num_macros=self.num_macros, params=self.params)

    @property
    def is_specialized(self) -> bool:
        """True when macros differ (specialized design, §V-C2)."""
        first = self.macros[0]
        return any(
            (m.num_pes, m.num_adcs, m.num_alus, m.adc_resolution)
            != (first.num_pes, first.num_adcs, first.num_alus,
                first.adc_resolution)
            for m in self.macros
        )

    @property
    def has_macro_sharing(self) -> bool:
        """True when any macro serves two layers (§IV-C1 rule b)."""
        return any(m.shared for m in self.macros)

    def power_report(self) -> PowerReport:
        """Aggregate per-resource power across all macros."""
        params = self.params
        crossbars = dacs = sample_holds = adcs = alus = 0.0
        for macro in self.macros:
            crossbars += macro.num_pes * params.crossbar_power_of(
                macro.pe.xb_size
            )
            dacs += (
                macro.num_pes * macro.pe.num_dacs
                * params.dac_power_of(macro.pe.res_dac)
            )
            sample_holds += (
                macro.num_pes * macro.pe.num_sample_holds
                * params.sample_hold_power
            )
            adcs += macro.num_adcs * params.adc_power_of(
                macro.adc_resolution
            )
            alus += macro.num_alus * params.alu_power
        count = self.num_macros
        return PowerReport(
            crossbars=crossbars,
            dacs=dacs,
            sample_holds=sample_holds,
            adcs=adcs,
            alus=alus,
            edram=count * params.edram_power,
            noc=count * params.noc_power,
            registers=count * params.register_power_per_macro,
        )

    def area_report(self) -> AreaReport:
        """Aggregate per-resource area across all macros."""
        params = self.params
        crossbars = dacs = sample_holds = adcs = alus = 0.0
        for macro in self.macros:
            crossbars += macro.num_pes * params.crossbar_area.get(
                macro.pe.xb_size, 0.0
            )
            dacs += macro.num_pes * macro.pe.num_dacs * params.dac_area
            sample_holds += (
                macro.num_pes * macro.pe.num_sample_holds
                * params.sample_hold_area
            )
            adcs += macro.num_adcs * params.adc_area
            alus += macro.num_alus * params.alu_area
        count = self.num_macros
        return AreaReport(
            crossbars=crossbars,
            dacs=dacs,
            sample_holds=sample_holds,
            adcs=adcs,
            alus=alus,
            edram=count * params.edram_area,
            noc=count * params.noc_area,
            registers=count * params.register_area_per_macro,
        )

    def macros_of_layer(self, layer_index: int) -> List[MacroConfig]:
        """The macro objects executing a weighted layer."""
        ids = self.layer_macros.get(layer_index, [])
        return [self.macros[i] for i in ids]

    def summary(self) -> str:
        """Human-readable chip inventory."""
        power = self.power_report()
        lines = [
            f"accelerator: {self.num_macros} macros, "
            f"{self.num_crossbars} crossbars, "
            f"{'specialized' if self.is_specialized else 'identical'} macros"
            f"{', with macro sharing' if self.has_macro_sharing else ''}",
            f"power: {power.total * 1e3:.1f} mW "
            f"({power.peripheral_fraction * 100:.0f}% peripheral)",
        ]
        for macro in self.macros:
            lines.append(
                f"  macro {macro.macro_id}: {macro.num_pes} PEs "
                f"({macro.pe.xb_size}x{macro.pe.xb_size}), "
                f"{macro.num_adcs} ADCs@{macro.adc_resolution}b, "
                f"{macro.num_alus} ALUs, layers={list(macro.layer_indices)}"
            )
        return "\n".join(lines)
