"""Typed component specifications.

Each spec couples a component's *rate* (how much work one instance does
per second) with its *power*, which is all Eq. 5/6 needs: the components
allocation stage trades instances of these specs against the peripheral
power budget. The specs are built from :class:`HardwareParams` so a single
technology override propagates everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams


class ComponentKind(enum.Enum):
    """The allocatable component classes of Fig. 2."""

    CROSSBAR = "crossbar"
    ADC = "adc"
    DAC = "dac"
    ALU = "alu"
    EDRAM = "edram"
    NOC_ROUTER = "noc_router"
    SAMPLE_HOLD = "sample_hold"
    REGISTER = "register"


@dataclass(frozen=True)
class ComponentSpec:
    """Base spec: a named component with power and a work rate.

    ``rate`` is in component-specific units per second (conversions/s for
    an ADC, elements/s for an ALU, bytes/s for memories). Eq. 5's
    ``Freq_c`` is exactly this rate.
    """

    kind: ComponentKind
    power: float  # watts per instance
    rate: float  # work units per second per instance
    area: float = 0.0  # mm^2 per instance

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ConfigurationError(f"{self.kind}: negative power")
        if self.rate <= 0:
            raise ConfigurationError(f"{self.kind}: rate must be positive")

    def time_for(self, workload: float, instances: float) -> float:
        """Eq. 5 latency term: ``workload / (rate * instances)``."""
        if instances <= 0:
            raise ConfigurationError(
                f"{self.kind}: instances must be positive, got {instances}"
            )
        return workload / (self.rate * instances)


@dataclass(frozen=True)
class CrossbarSpec(ComponentSpec):
    """One ReRAM crossbar; rate = MVM reads per second."""

    size: int = 128

    @classmethod
    def from_params(cls, params: HardwareParams, size: int) -> "CrossbarSpec":
        return cls(
            kind=ComponentKind.CROSSBAR,
            power=params.crossbar_power_of(size),
            rate=1.0 / params.crossbar_latency,
            area=params.crossbar_area.get(size, 0.0),
            size=size,
        )


@dataclass(frozen=True)
class AdcSpec(ComponentSpec):
    """One ADC; rate = analog-to-digital conversions per second."""

    resolution: int = 8

    @classmethod
    def from_params(cls, params: HardwareParams, resolution: int) -> "AdcSpec":
        return cls(
            kind=ComponentKind.ADC,
            power=params.adc_power_of(resolution),
            rate=params.adc_sample_rate,
            area=params.adc_area,
            resolution=resolution,
        )


@dataclass(frozen=True)
class DacSpec(ComponentSpec):
    """One DAC; rate = digital-to-analog conversions per second."""

    resolution: int = 1

    @classmethod
    def from_params(cls, params: HardwareParams, resolution: int) -> "DacSpec":
        return cls(
            kind=ComponentKind.DAC,
            power=params.dac_power_of(resolution),
            rate=1.0 / params.dac_latency,
            area=params.dac_area,
            resolution=resolution,
        )


@dataclass(frozen=True)
class AluSpec(ComponentSpec):
    """One vector ALU lane; rate = element operations per second."""

    @classmethod
    def from_params(cls, params: HardwareParams) -> "AluSpec":
        return cls(
            kind=ComponentKind.ALU,
            power=params.alu_power,
            rate=params.alu_frequency,
            area=params.alu_area,
        )


@dataclass(frozen=True)
class EDramSpec(ComponentSpec):
    """One macro scratchpad; rate = bytes per second."""

    size_bytes: int = 64 * 1024

    @classmethod
    def from_params(cls, params: HardwareParams) -> "EDramSpec":
        return cls(
            kind=ComponentKind.EDRAM,
            power=params.edram_power,
            rate=params.edram_bandwidth,
            area=params.edram_area,
            size_bytes=params.edram_size_bytes,
        )


@dataclass(frozen=True)
class NocRouterSpec(ComponentSpec):
    """One NoC router; rate = bytes per second per port."""

    ports: int = 8

    @classmethod
    def from_params(cls, params: HardwareParams) -> "NocRouterSpec":
        return cls(
            kind=ComponentKind.NOC_ROUTER,
            power=params.noc_power,
            rate=params.noc_port_bandwidth,
            area=params.noc_area,
            ports=params.noc_ports,
        )


@dataclass(frozen=True)
class SampleHoldSpec(ComponentSpec):
    """One sample-and-hold unit; rate = samples per second."""

    @classmethod
    def from_params(cls, params: HardwareParams) -> "SampleHoldSpec":
        return cls(
            kind=ComponentKind.SAMPLE_HOLD,
            power=params.sample_hold_power,
            rate=1.0 / 1e-9,
            area=params.sample_hold_area,
        )


@dataclass(frozen=True)
class RegisterFileSpec(ComponentSpec):
    """Per-macro register files; rate = accesses per second (nominal)."""

    @classmethod
    def from_params(cls, params: HardwareParams) -> "RegisterFileSpec":
        return cls(
            kind=ComponentKind.REGISTER,
            power=params.register_power_per_macro,
            rate=params.edram_frequency,
            area=params.register_area_per_macro,
        )
