"""Physical weight programming: model weights -> crossbar cells.

After components allocation "the accelerator's implementation details
are finalized" (§III). The one artifact still implicit in a
:class:`SynthesisSolution` is the *weight layout*: which tile of which
layer's weight matrix, in which bit-slice and which duplicate copy,
lands on which PE of which macro. This module materializes that layout
and reports programming statistics (cells used, utilization per macro),
which is what a device-programming backend would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.solution import SynthesisSolution
from repro.errors import ConfigurationError
from repro.hardware.crossbar import CrossbarTile, map_layer_weights
from repro.utils.mathutils import ceil_div


@dataclass(frozen=True)
class PEAssignment:
    """One physical PE's programmed contents."""

    macro_id: int
    pe_index: int  # within the macro
    layer: int
    copy: int  # which weight duplicate (0 .. WtDup-1)
    tile: CrossbarTile

    @property
    def cells_used(self) -> int:
        return self.tile.rows * self.tile.cols


@dataclass
class WeightLayout:
    """The chip-wide weight-programming plan."""

    xb_size: int
    assignments: List[PEAssignment] = field(default_factory=list)

    @property
    def num_programmed_pes(self) -> int:
        return len(self.assignments)

    def assignments_of_macro(self, macro_id: int) -> List[PEAssignment]:
        return [a for a in self.assignments if a.macro_id == macro_id]

    def assignments_of_layer(self, layer: int) -> List[PEAssignment]:
        return [a for a in self.assignments if a.layer == layer]

    def cell_utilization(self, macro_id: int) -> float:
        """Programmed-cell fraction of a macro's crossbar capacity."""
        assignments = self.assignments_of_macro(macro_id)
        if not assignments:
            return 0.0
        used = sum(a.cells_used for a in assignments)
        capacity = len(assignments) * self.xb_size * self.xb_size
        return used / capacity

    def utilization_report(self) -> Dict[int, float]:
        """Macro id -> programmed-cell utilization."""
        macros = sorted({a.macro_id for a in self.assignments})
        return {mid: self.cell_utilization(mid) for mid in macros}

    def validate(self) -> None:
        """Check structural invariants of the layout.

        - every PE index is programmed at most once per macro;
        - tiles fit in the crossbar geometry.
        """
        seen = set()
        for a in self.assignments:
            key = (a.macro_id, a.pe_index)
            if key in seen:
                raise ConfigurationError(
                    f"PE {a.pe_index} of macro {a.macro_id} programmed "
                    "twice"
                )
            seen.add(key)
            if a.tile.rows > self.xb_size or a.tile.cols > self.xb_size:
                raise ConfigurationError(
                    f"tile exceeds crossbar: {a.tile}"
                )


def program_solution(solution: SynthesisSolution) -> WeightLayout:
    """Derive the weight layout of a synthesized design.

    Each layer's ``WtDup`` copies of its Eq. 1 tile set are dealt
    round-robin across the layer's macros, filling PE slots in order —
    the same even split the evaluator's bandwidth model assumes. Shared
    macros receive both layers' weights (their PE budgets were sized by
    :meth:`SynthesisSolution.build_accelerator` for the sum).
    """
    spec = solution.spec
    layout = WeightLayout(xb_size=solution.xb_size)
    next_pe: Dict[int, int] = {}

    model_layers = spec.model.weighted_layers
    for geo in spec.geometries:
        tiles = map_layer_weights(
            model_layers[geo.index], solution.xb_size,
            solution.res_rram, spec.model.weight_precision,
        ).tiles
        group: Sequence[int] = solution.partition.macro_groups[geo.index]
        cursor = 0
        for copy in range(geo.wt_dup):
            for tile in tiles:
                macro_id = group[cursor % len(group)]
                cursor += 1
                pe_index = next_pe.get(macro_id, 0)
                next_pe[macro_id] = pe_index + 1
                layout.assignments.append(
                    PEAssignment(
                        macro_id=macro_id,
                        pe_index=pe_index,
                        layer=geo.index,
                        copy=copy,
                        tile=tile,
                    )
                )
    layout.validate()
    return layout


def programming_summary(layout: WeightLayout) -> str:
    """Compact text report of the programming plan."""
    report = layout.utilization_report()
    lines = [
        f"weight layout: {layout.num_programmed_pes} PEs programmed "
        f"across {len(report)} macros"
    ]
    for macro_id, utilization in report.items():
        count = len(layout.assignments_of_macro(macro_id))
        lines.append(
            f"  macro {macro_id}: {count} PEs, "
            f"{utilization * 100:.1f}% cells used"
        )
    return "\n".join(lines)
