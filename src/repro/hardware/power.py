"""Power budgeting (Eq. 3) and budget bookkeeping.

Eq. 3 converts the user's total power constraint into a crossbar count::

    #crossbar = TotalPower * RatioRram / CrossbarPower(XbSize, ResRram)

``RatioRram`` (Table I, explored in [0.1, 0.4]) is the fraction of total
power granted to the ReRAM arrays; the remaining ``1 - RatioRram`` feeds
the peripheral components via Eq. 5's constraint. :class:`PowerBudget`
tracks both sides so every stage draws from one consistent account.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, InfeasibleError
from repro.hardware.params import HardwareParams


def crossbar_budget(
    total_power: float,
    ratio_rram: float,
    xb_size: int,
    res_rram: int,
    params: HardwareParams,
) -> int:
    """Eq. 3: how many crossbars the ReRAM power share affords.

    Note ``res_rram`` does not change a crossbar's read power in our
    component model (see :mod:`repro.hardware.params`) but is kept in the
    signature because Eq. 3 names it and alternative technologies may
    price resolution.
    """
    if total_power <= 0:
        raise ConfigurationError("total power must be positive")
    if not 0.0 < ratio_rram < 1.0:
        raise ConfigurationError(
            f"RatioRram must lie in (0, 1), got {ratio_rram}"
        )
    if res_rram <= 0:
        raise ConfigurationError("ResRram must be positive")
    per_crossbar = params.crossbar_power_of(xb_size)
    count = int(total_power * ratio_rram / per_crossbar)
    if count < 1:
        raise InfeasibleError(
            f"power budget {total_power}W x {ratio_rram} cannot afford a "
            f"single {xb_size}x{xb_size} crossbar ({per_crossbar}W)"
        )
    return count


@dataclass(frozen=True)
class PowerBudget:
    """The two-sided power account of one design point."""

    total_power: float
    ratio_rram: float
    xb_size: int
    res_rram: int
    num_crossbars: int

    @classmethod
    def from_constraint(
        cls,
        total_power: float,
        ratio_rram: float,
        xb_size: int,
        res_rram: int,
        params: HardwareParams,
    ) -> "PowerBudget":
        """Build a budget by applying Eq. 3."""
        count = crossbar_budget(
            total_power, ratio_rram, xb_size, res_rram, params
        )
        return cls(
            total_power=total_power,
            ratio_rram=ratio_rram,
            xb_size=xb_size,
            res_rram=res_rram,
            num_crossbars=count,
        )

    @property
    def rram_power(self) -> float:
        """Power share granted to crossbars."""
        return self.total_power * self.ratio_rram

    @property
    def peripheral_power(self) -> float:
        """Eq. 5 RHS: power available to all non-crossbar components."""
        return self.total_power * (1.0 - self.ratio_rram)
