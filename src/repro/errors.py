"""Exception hierarchy for the PIMSYN reproduction.

All library-raised errors derive from :class:`PimsynError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from infeasible
synthesis problems. :class:`InfeasibleError` is load-bearing in Alg. 1:
design points whose Eq. 3 crossbar budget cannot hold one weight copy
(Eq. 2), and macro partitions whose fixed overhead overruns the Eq. 5
peripheral budget, signal it so the DSE skips them and keeps searching.
"""

from __future__ import annotations


class PimsynError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(PimsynError):
    """A user-supplied configuration value is invalid or inconsistent."""


class ModelError(PimsynError):
    """A CNN model description is malformed (bad shapes, unknown ops...)."""


class InfeasibleError(PimsynError):
    """The synthesis problem has no feasible solution.

    Raised, for example, when the power budget is too small to hold one
    copy of every layer's weights (Eq. 2 has no feasible point).
    """


class SynthesisInterrupted(PimsynError):
    """A synthesis run was stopped by the user (Ctrl-C / SIGTERM).

    Raised by the DSE engine after it has shut its worker pool down
    cleanly. ``partial_memo`` carries the evaluation-memo entries
    gathered before the interrupt so callers (notably the serve-layer
    result store) can persist them; a resubmitted identical job then
    warm-starts from the partial landscape instead of from scratch.
    """

    def __init__(self, message: str, partial_memo=None) -> None:
        super().__init__(message)
        self.partial_memo = list(partial_memo) if partial_memo else []


class SchedulerBusyError(PimsynError):
    """The serve scheduler's bounded queue is full (backpressure).

    Raised by :meth:`repro.serve.scheduler.JobScheduler.submit` when
    ``max_queue_depth`` is set and reached, instead of letting the
    backlog grow without bound. ``retry_after`` is the suggested wait
    in seconds (an estimate from queue depth and recent job wall
    times); the HTTP layer maps it to ``429`` + ``Retry-After``.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class SimulationError(PimsynError):
    """The behavior-level simulator hit an inconsistent state."""


class IRError(PimsynError):
    """An IR node or DAG violates a structural invariant."""
