"""Exception hierarchy for the PIMSYN reproduction.

All library-raised errors derive from :class:`PimsynError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from infeasible
synthesis problems. :class:`InfeasibleError` is load-bearing in Alg. 1:
design points whose Eq. 3 crossbar budget cannot hold one weight copy
(Eq. 2), and macro partitions whose fixed overhead overruns the Eq. 5
peripheral budget, signal it so the DSE skips them and keeps searching.
"""

from __future__ import annotations


class PimsynError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(PimsynError):
    """A user-supplied configuration value is invalid or inconsistent."""


class ModelError(PimsynError):
    """A CNN model description is malformed (bad shapes, unknown ops...)."""


class InfeasibleError(PimsynError):
    """The synthesis problem has no feasible solution.

    Raised, for example, when the power budget is too small to hold one
    copy of every layer's weights (Eq. 2 has no feasible point).
    """


class SimulationError(PimsynError):
    """The behavior-level simulator hit an inconsistent state."""


class IRError(PimsynError):
    """An IR node or DAG violates a structural invariant."""
