"""Shared small utilities beneath the synthesis flow.

:mod:`repro.utils.mathutils` carries the integer ceiling/power-of-two
arithmetic that Eq. 1's crossbar-set math and the Table I grids lean
on; :mod:`repro.utils.rng` provides the label-split seeded RNG scheme
that makes Alg. 1's stochastic stages (SA filter, EA) reproducible and
order-independent — the property the parallel DSE executor relies on.
"""

from repro.utils.mathutils import (
    ceil_div,
    clamp,
    geomean,
    is_power_of_two,
    mean,
    next_power_of_two,
    stdev,
)
from repro.utils.rng import SeedSequence, make_rng

__all__ = [
    "ceil_div",
    "clamp",
    "geomean",
    "is_power_of_two",
    "mean",
    "next_power_of_two",
    "stdev",
    "SeedSequence",
    "make_rng",
]
