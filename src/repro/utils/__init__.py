"""Shared small utilities: integer math, statistics, seeded RNG helpers."""

from repro.utils.mathutils import (
    ceil_div,
    clamp,
    geomean,
    is_power_of_two,
    mean,
    next_power_of_two,
    stdev,
)
from repro.utils.rng import SeedSequence, make_rng

__all__ = [
    "ceil_div",
    "clamp",
    "geomean",
    "is_power_of_two",
    "mean",
    "next_power_of_two",
    "stdev",
    "SeedSequence",
    "make_rng",
]
