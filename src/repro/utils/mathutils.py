"""Integer and statistics helpers used throughout the synthesis flow.

The paper's equations are dominated by ceilings (crossbar-set sizing,
pipeline step counts) and population statistics (the SA energy function of
Eq. 4 uses standard deviations), so these helpers are kept dependency-free
and exact for integers.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def ceil_div(numerator: int, denominator: int) -> int:
    """Exact integer ceiling division.

    Used for every ``ceil(x / y)`` in the paper (Eq. 1, step counts,
    bit-serial iteration counts).

    >>> ceil_div(7, 2)
    4
    >>> ceil_div(8, 2)
    4
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    return max(low, min(high, value))


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (>=1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty iterable."""
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation, as used by the SA energy (Eq. 4).

    The paper's ``stdev`` balances per-layer quantities across *all*
    layers, so the population (not sample) form is the natural choice;
    a single-layer network legitimately has zero spread.
    """
    data = list(values)
    if not data:
        raise ValueError("stdev of empty sequence")
    mu = sum(data) / len(data)
    return math.sqrt(sum((x - mu) ** 2 for x in data) / len(data))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for 'average improvement')."""
    data = list(values)
    if not data:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in data):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))
