"""Deterministic random-number management for the DSE metaheuristics.

Both the SA filter (Alg. 1 line 6) and the EA explorer (Alg. 2) must be
reproducible run-to-run so that benchmark results are stable. Every
stochastic component receives an independent ``random.Random`` derived
from one master seed and a content *label* through a splittable
hash-based scheme — so a component's stream depends only on its label,
never on how many other components spawned first. That independence is
what lets the parallel DSE executor evaluate (point, WtDup, ResDAC)
tasks in any order, on any worker, and still reproduce the serial run.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field


def make_rng(seed: int) -> random.Random:
    """Create a ``random.Random`` from an integer seed."""
    return random.Random(seed)


@dataclass
class SeedSequence:
    """Splittable seed source.

    ``spawn(label)`` deterministically derives a child seed from the
    master seed and a string label, so adding a new consumer never
    perturbs the streams of existing ones (unlike incrementing a shared
    counter would).
    """

    seed: int
    _children: dict = field(default_factory=dict, repr=False)

    def spawn(self, label: str) -> random.Random:
        """Return an independent RNG for ``label`` (stable across calls)."""
        if label not in self._children:
            digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
            self._children[label] = int.from_bytes(digest[:8], "big")
        return random.Random(self._children[label])

    def child_seed(self, label: str) -> int:
        """Derive (and memoize) the integer child seed for ``label``."""
        self.spawn(label)
        return self._children[label]
