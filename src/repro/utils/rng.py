"""Deterministic random-number management for the DSE metaheuristics.

Both the SA filter and the EA explorer must be reproducible run-to-run so
that benchmark results are stable. Every stochastic component receives an
independent ``random.Random`` derived from one master seed through a
simple splittable scheme.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field


def make_rng(seed: int) -> random.Random:
    """Create a ``random.Random`` from an integer seed."""
    return random.Random(seed)


@dataclass
class SeedSequence:
    """Splittable seed source.

    ``spawn(label)`` deterministically derives a child seed from the
    master seed and a string label, so adding a new consumer never
    perturbs the streams of existing ones (unlike incrementing a shared
    counter would).
    """

    seed: int
    _children: dict = field(default_factory=dict, repr=False)

    def spawn(self, label: str) -> random.Random:
        """Return an independent RNG for ``label`` (stable across calls)."""
        if label not in self._children:
            digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
            self._children[label] = int.from_bytes(digest[:8], "big")
        return random.Random(self._children[label])

    def child_seed(self, label: str) -> int:
        """Derive (and memoize) the integer child seed for ``label``."""
        self.spawn(label)
        return self._children[label]
