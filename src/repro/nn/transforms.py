"""Graph utilities over CNN models: statistics, validation, fusion view.

Tooling a synthesis user expects around the §III input boundary (the
CNN model is the first of PIMSYN's three user inputs):

- :func:`model_report` — per-layer table (shapes, MACs, weights,
  crossbar demand at a device point) as structured rows;
- :func:`validate_for_synthesis` — the pre-flight checks PIMSYN runs
  conceptually at its input boundary, surfaced as a reusable pass;
- :func:`fused_stages` — the conv/FC-anchored stage view: each weighted
  layer together with the vector ops its macros absorb (this is the
  grouping the ALU-workload accounting in stage 4 relies on);
- :func:`receptive_field` — per-layer receptive-field sizes (useful
  when reasoning about the fine-grained pipeline's halo dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ModelError
from repro.hardware.crossbar import crossbar_set_size
from repro.nn.layers import ConvLayer, FCLayer, Layer, LayerKind, PoolLayer
from repro.nn.model import CNNModel
from repro.nn.workload import layer_macs


@dataclass(frozen=True)
class LayerReportRow:
    """One weighted layer's statistics."""

    index: int
    name: str
    kind: str
    output_shape: Tuple[int, int, int]
    macs: int
    weights: int
    crossbar_set: int  # Eq. 1 at the given device point


def model_report(
    model: CNNModel, xb_size: int = 128, res_rram: int = 2
) -> List[LayerReportRow]:
    """Structured per-weighted-layer statistics."""
    rows = []
    for index, layer in enumerate(model.weighted_layers):
        assert layer.output_shape is not None
        rows.append(
            LayerReportRow(
                index=index,
                name=layer.name,
                kind=layer.kind.value,
                output_shape=layer.output_shape,
                macs=layer_macs(layer),
                weights=layer.weight_count,
                crossbar_set=crossbar_set_size(
                    layer, xb_size, res_rram, model.weight_precision
                ),
            )
        )
    return rows


def validate_for_synthesis(model: CNNModel) -> List[str]:
    """Pre-flight checks; returns human-readable problems (empty = OK).

    Checks beyond structural validation (which the model constructor
    already enforces): the network must contain at least one weighted
    layer, weighted layers must terminate the graph's sinks' ancestry,
    and precisions must be representable by the DAC/cell grids.
    """
    problems: List[str] = []
    if model.num_weighted_layers == 0:
        problems.append("model has no conv/fc layers to map onto "
                        "crossbars")
    if model.act_precision > 32 or model.weight_precision > 32:
        problems.append("precisions beyond 32 bits are not supported")

    # Every sink should descend from a weighted layer, otherwise part
    # of the network computes nothing PIM-mappable.
    for layer in model.topo_order:
        consumed = any(
            layer.name in other.inputs for other in model.topo_order
        )
        if not consumed and not layer.is_weighted:
            if model.producer_weighted_index(layer.name) is None:
                problems.append(
                    f"sink {layer.name!r} has no weighted ancestor"
                )
    return problems


@dataclass(frozen=True)
class FusedStage:
    """A weighted layer plus the vector ops fused onto its macros."""

    weighted_index: int
    weighted_name: str
    vector_ops: Tuple[str, ...]

    @property
    def depth(self) -> int:
        return 1 + len(self.vector_ops)


def fused_stages(model: CNNModel) -> List[FusedStage]:
    """The conv/FC-anchored stage decomposition (ALU fusion view)."""
    stages = []
    for index, layer in enumerate(model.weighted_layers):
        ops = tuple(
            op.name for op in model.vector_ops_after(layer.name)
        )
        stages.append(
            FusedStage(
                weighted_index=index,
                weighted_name=layer.name,
                vector_ops=ops,
            )
        )
    return stages


def receptive_field(model: CNNModel) -> Dict[str, int]:
    """Receptive-field edge length of every layer's outputs.

    Standard recurrence over kernel/stride; joins take the max of
    their branches. FC layers see the whole input (field = -1 marker
    is avoided; the true accumulated field is reported).
    """
    field: Dict[str, Tuple[int, int]] = {"input": (1, 1)}  # (rf, jump)

    for layer in model.topo_order:
        parents = [field[src] for src in layer.inputs if src in field]
        if not parents:
            raise ModelError(f"{layer.name}: missing producer fields")
        rf = max(p[0] for p in parents)
        jump = max(p[1] for p in parents)
        if isinstance(layer, (ConvLayer, PoolLayer)):
            kernel = layer.kernel
            stride = layer.stride
            rf = rf + (kernel - 1) * jump
            jump = jump * stride
        elif isinstance(layer, FCLayer):
            # Global: the field covers the whole upstream extent.
            rf = max(model.input_shape[1], model.input_shape[2])
            jump = rf
        field[layer.name] = (rf, jump)
    return {name: rf for name, (rf, _j) in field.items()
            if name != "input"}
