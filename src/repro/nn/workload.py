"""Workload statistics: MAC counts and data-access volumes.

These feed three places in the paper:

- Eq. 4's ``AccessVolume_i = WtDup_i * (WK^2 * CI + CO)`` term of the SA
  energy function;
- throughput accounting (``TOPS`` needs total multiply-accumulates);
- components allocation (Eq. 5's per-component workloads ``Wl_i_c``).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ModelError
from repro.nn.layers import ConvLayer, FCLayer, Layer, LayerKind
from repro.nn.model import CNNModel


def layer_macs(layer: Layer) -> int:
    """Multiply-accumulate count of one weighted layer over one image."""
    if isinstance(layer, ConvLayer):
        if layer.output_shape is None:
            raise ModelError(f"{layer.name}: shapes not inferred")
        _, ho, wo = layer.output_shape
        return layer.weight_rows * layer.out_channels * ho * wo
    if isinstance(layer, FCLayer):
        return layer.in_features * layer.out_features
    raise ModelError(f"{layer.name}: MACs undefined for {layer.kind.value}")


def model_macs(model: CNNModel) -> int:
    """Total MACs per inference across all weighted layers."""
    return sum(layer_macs(l) for l in model.weighted_layers)


def model_weight_count(model: CNNModel) -> int:
    """Total scalar weights across all weighted layers."""
    return sum(l.weight_count for l in model.weighted_layers)


def layer_access_volume(layer: Layer, wt_dup: int) -> int:
    """Per-step data-access volume of Eq. 4.

    ``AccessVolume_i = WtDup_i * (WK_i^2 * CI_i + CO_i)``: with weights
    duplicated ``WtDup_i`` times, each computation-block step loads
    ``WtDup_i`` input windows and stores ``WtDup_i * CO`` outputs... the
    paper folds both into the single expression above (inputs dominate).
    """
    if wt_dup <= 0:
        raise ModelError(f"{layer.name}: WtDup must be positive, got {wt_dup}")
    if isinstance(layer, ConvLayer):
        return wt_dup * (layer.weight_rows + layer.out_channels)
    if isinstance(layer, FCLayer):
        return wt_dup * (layer.in_features + layer.out_features)
    raise ModelError(
        f"{layer.name}: access volume undefined for {layer.kind.value}"
    )


def vector_op_workload(model: CNNModel, weighted_name: str) -> int:
    """Element count of vector ops charged to a weighted layer's ALUs.

    Pooling, ReLU and residual adds that consume a weighted layer's
    activations execute on the ALU units of the macros holding that layer
    (Fig. 2's ALU components support "shift-and-add, pooling, ReLU,
    etc."). Returns the number of scalar elements processed per image.
    """
    total = 0
    for op in model.vector_ops_after(weighted_name):
        if op.output_shape is None:
            raise ModelError(f"{op.name}: shapes not inferred")
        c, h, w = op.output_shape
        if op.kind == LayerKind.POOL:
            kernel = op.kernel * op.kernel  # type: ignore[attr-defined]
            total += c * h * w * kernel
        elif op.kind in (LayerKind.RELU, LayerKind.ADD):
            total += c * h * w
        # flatten/concat are layout changes, not arithmetic
    return total


def per_layer_stats(model: CNNModel) -> Dict[str, Dict[str, int]]:
    """Convenience dump used by reports and tests."""
    stats: Dict[str, Dict[str, int]] = {}
    for layer in model.weighted_layers:
        assert layer.output_shape is not None
        _, ho, wo = layer.output_shape
        stats[layer.name] = {
            "macs": layer_macs(layer),
            "weights": layer.weight_count,
            "output_positions": ho * wo,
            "rows": layer.weight_rows,
        }
    return stats
