"""Layer dataclasses.

PIMSYN's synthesis stages operate on *weight-bearing* layers (convolutions
and fully-connected layers map onto crossbars); pooling/ReLU/add are
vector operations executed by a macro's ALU units and matter for workload
accounting, not weight mapping. Each layer carries the geometry the paper
uses: ``WK`` (kernel width), ``CI``/``CO`` (input/output channels) and,
after shape inference, ``WO``/``HO`` (output feature-map width/height).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ModelError


class LayerKind(enum.Enum):
    """Discriminator for the layer taxonomy PIMSYN understands."""

    CONV = "conv"
    FC = "fc"
    POOL = "pool"
    RELU = "relu"
    ADD = "add"
    CONCAT = "concat"
    FLATTEN = "flatten"


@dataclass
class Layer:
    """Base class for all layers.

    Attributes
    ----------
    name:
        Unique layer identifier within a model.
    inputs:
        Names of producer layers; the special name ``"input"`` denotes the
        network input tensor. Order matters for ``concat``.
    output_shape:
        ``(channels, height, width)``, filled in by shape inference.
    """

    name: str
    inputs: Tuple[str, ...] = field(default=("input",))
    output_shape: Optional[Tuple[int, int, int]] = field(default=None)

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    @property
    def is_weighted(self) -> bool:
        """True for layers whose weights are programmed into crossbars."""
        return False

    def validate(self) -> None:
        """Raise :class:`ModelError` on malformed parameters."""
        if not self.name:
            raise ModelError("layer must have a non-empty name")
        if not self.inputs:
            raise ModelError(f"layer {self.name!r} has no inputs")


@dataclass
class ConvLayer(Layer):
    """2-D convolution.

    ``kernel`` is the paper's ``WK`` (square kernels, as in all five
    benchmark networks), ``in_channels``/``out_channels`` are ``CI``/``CO``.
    """

    kernel: int = 3
    in_channels: int = 0
    out_channels: int = 0
    stride: int = 1
    padding: int = 0

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONV

    @property
    def is_weighted(self) -> bool:
        return True

    @property
    def weight_rows(self) -> int:
        """Crossbar rows one filter occupies: ``WK * WK * CI`` (Fig. 1)."""
        return self.kernel * self.kernel * self.in_channels

    @property
    def weight_count(self) -> int:
        """Total scalar weights: rows x filters."""
        return self.weight_rows * self.out_channels

    def validate(self) -> None:
        super().validate()
        if self.kernel <= 0:
            raise ModelError(f"{self.name}: kernel must be positive")
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ModelError(f"{self.name}: channel counts must be positive")
        if self.stride <= 0:
            raise ModelError(f"{self.name}: stride must be positive")
        if self.padding < 0:
            raise ModelError(f"{self.name}: padding must be non-negative")
        if len(self.inputs) != 1:
            raise ModelError(f"{self.name}: conv takes exactly one input")


@dataclass
class FCLayer(Layer):
    """Fully-connected layer, mapped as a 1x1 'convolution' over a 1x1 map.

    On a crossbar a fully-connected layer is an MVM with ``in_features``
    rows and ``out_features`` columns and a single output position
    (``WO = HO = 1``), which is exactly how PIM accelerators treat it.
    """

    in_features: int = 0
    out_features: int = 0

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FC

    @property
    def is_weighted(self) -> bool:
        return True

    @property
    def weight_rows(self) -> int:
        return self.in_features

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features

    def validate(self) -> None:
        super().validate()
        if self.in_features <= 0 or self.out_features <= 0:
            raise ModelError(f"{self.name}: feature counts must be positive")
        if len(self.inputs) != 1:
            raise ModelError(f"{self.name}: fc takes exactly one input")


@dataclass
class PoolLayer(Layer):
    """Max/average pooling; executed by ALU units (the ``pooling`` aluop)."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0
    mode: str = "max"

    @property
    def kind(self) -> LayerKind:
        return LayerKind.POOL

    def validate(self) -> None:
        super().validate()
        if self.kernel <= 0 or self.stride <= 0:
            raise ModelError(f"{self.name}: kernel/stride must be positive")
        if self.mode not in ("max", "avg"):
            raise ModelError(f"{self.name}: unknown pool mode {self.mode!r}")
        if len(self.inputs) != 1:
            raise ModelError(f"{self.name}: pool takes exactly one input")


@dataclass
class ReluLayer(Layer):
    """ReLU activation; executed by ALU units."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.RELU

    def validate(self) -> None:
        super().validate()
        if len(self.inputs) != 1:
            raise ModelError(f"{self.name}: relu takes exactly one input")


@dataclass
class AddLayer(Layer):
    """Element-wise addition (ResNet shortcut joins)."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ADD

    def validate(self) -> None:
        super().validate()
        if len(self.inputs) != 2:
            raise ModelError(f"{self.name}: add takes exactly two inputs")


@dataclass
class ConcatLayer(Layer):
    """Channel-wise concatenation."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONCAT

    def validate(self) -> None:
        super().validate()
        if len(self.inputs) < 2:
            raise ModelError(f"{self.name}: concat needs >=2 inputs")


@dataclass
class FlattenLayer(Layer):
    """Flatten a feature map to a vector ahead of FC layers."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FLATTEN

    def validate(self) -> None:
        super().validate()
        if len(self.inputs) != 1:
            raise ModelError(f"{self.name}: flatten takes exactly one input")
