"""Shape inference over a layer graph.

Fills in every layer's ``output_shape`` (``(channels, height, width)``)
from the network input shape. PIMSYN needs ``WO``/``HO`` of every weighted
layer for Eq. 2 (steps per layer) and Eq. 4 (the SA energy), so inference
runs once at model-construction time and the results are cached on the
layers themselves.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.errors import ModelError
from repro.nn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    FCLayer,
    FlattenLayer,
    Layer,
    PoolLayer,
    ReluLayer,
)

Shape = Tuple[int, int, int]


def conv_output_hw(size: int, kernel: int, stride: int, padding: int) -> int:
    """Standard convolution/pooling output-size formula."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ModelError(
            f"non-positive output size: in={size} k={kernel} "
            f"s={stride} p={padding}"
        )
    return out


def infer_shapes(layers: Iterable[Layer], input_shape: Shape) -> Dict[str, Shape]:
    """Infer output shapes for ``layers`` given ``input_shape``.

    ``layers`` must be in topological order (producers before consumers),
    which :class:`repro.nn.model.CNNModel` guarantees. Returns the mapping
    name -> shape and also writes each shape onto the layer object.
    """
    if len(input_shape) != 3 or any(d <= 0 for d in input_shape):
        raise ModelError(f"bad input shape {input_shape!r}")

    shapes: Dict[str, Shape] = {"input": input_shape}
    for layer in layers:
        in_shapes = []
        for src in layer.inputs:
            if src not in shapes:
                raise ModelError(
                    f"layer {layer.name!r} consumes {src!r} before it is "
                    "produced (graph is not topologically ordered?)"
                )
            in_shapes.append(shapes[src])
        shape = _infer_one(layer, in_shapes)
        layer.output_shape = shape
        shapes[layer.name] = shape
    return shapes


def _infer_one(layer: Layer, in_shapes: list) -> Shape:
    """Shape rule for a single layer."""
    if isinstance(layer, ConvLayer):
        c, h, w = in_shapes[0]
        if c != layer.in_channels:
            raise ModelError(
                f"{layer.name}: expects {layer.in_channels} input channels, "
                f"producer supplies {c}"
            )
        oh = conv_output_hw(h, layer.kernel, layer.stride, layer.padding)
        ow = conv_output_hw(w, layer.kernel, layer.stride, layer.padding)
        return (layer.out_channels, oh, ow)

    if isinstance(layer, FCLayer):
        c, h, w = in_shapes[0]
        if c * h * w != layer.in_features:
            raise ModelError(
                f"{layer.name}: expects {layer.in_features} input features, "
                f"producer supplies {c * h * w}"
            )
        return (layer.out_features, 1, 1)

    if isinstance(layer, PoolLayer):
        c, h, w = in_shapes[0]
        oh = conv_output_hw(h, layer.kernel, layer.stride, layer.padding)
        ow = conv_output_hw(w, layer.kernel, layer.stride, layer.padding)
        return (c, oh, ow)

    if isinstance(layer, ReluLayer):
        return in_shapes[0]

    if isinstance(layer, AddLayer):
        a, b = in_shapes
        if a != b:
            raise ModelError(f"{layer.name}: add operands differ: {a} vs {b}")
        return a

    if isinstance(layer, ConcatLayer):
        base = in_shapes[0]
        channels = 0
        for s in in_shapes:
            if s[1:] != base[1:]:
                raise ModelError(
                    f"{layer.name}: concat spatial dims differ: {s} vs {base}"
                )
            channels += s[0]
        return (channels, base[1], base[2])

    if isinstance(layer, FlattenLayer):
        c, h, w = in_shapes[0]
        return (c * h * w, 1, 1)

    raise ModelError(f"no shape rule for layer type {type(layer).__name__}")
