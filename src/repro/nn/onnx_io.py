"""ONNX-like JSON interchange for CNN structures.

The paper's entry point is "a CNN model structure described in the ONNX
format" (§III). The ``onnx`` package is not available offline, so we
provide a lightweight JSON document with the same information content: a
graph of nodes with op types and attributes plus the input tensor shape.
The schema intentionally mirrors ONNX naming (``Conv``, ``MaxPool``,
``Gemm``, ``Relu``, ``Add``, ``Concat``, ``Flatten``) so that converting a
real ONNX graph to this format is a mechanical transformation.

Example document::

    {
      "name": "lenet5",
      "input_shape": [1, 32, 32],
      "act_precision": 16,
      "weight_precision": 16,
      "nodes": [
        {"op": "Conv", "name": "conv1", "inputs": ["input"],
         "attrs": {"kernel": 5, "out_channels": 6, "stride": 1,
                   "padding": 0}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import ModelError
from repro.nn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    FCLayer,
    FlattenLayer,
    Layer,
    LayerKind,
    PoolLayer,
    ReluLayer,
)
from repro.nn.model import CNNModel

_OP_TO_KIND = {
    "Conv": LayerKind.CONV,
    "Gemm": LayerKind.FC,
    "MaxPool": LayerKind.POOL,
    "AveragePool": LayerKind.POOL,
    "Relu": LayerKind.RELU,
    "Add": LayerKind.ADD,
    "Concat": LayerKind.CONCAT,
    "Flatten": LayerKind.FLATTEN,
}

_KIND_TO_OP = {
    LayerKind.CONV: "Conv",
    LayerKind.FC: "Gemm",
    LayerKind.RELU: "Relu",
    LayerKind.ADD: "Add",
    LayerKind.CONCAT: "Concat",
    LayerKind.FLATTEN: "Flatten",
}


def _node_to_layer(node: Dict[str, Any], in_channels_hint: int) -> Layer:
    """Decode one JSON node; ``in_channels_hint`` resolves Conv CI lazily."""
    try:
        op = node["op"]
        name = node["name"]
        inputs = tuple(node.get("inputs", ["input"]))
        attrs = node.get("attrs", {})
    except (KeyError, TypeError) as exc:
        raise ModelError(f"malformed node {node!r}: {exc}") from exc

    if op not in _OP_TO_KIND:
        raise ModelError(f"node {name!r}: unsupported op {op!r}")

    if op == "Conv":
        return ConvLayer(
            name=name, inputs=inputs,
            kernel=int(attrs["kernel"]),
            in_channels=int(attrs.get("in_channels", in_channels_hint)),
            out_channels=int(attrs["out_channels"]),
            stride=int(attrs.get("stride", 1)),
            padding=int(attrs.get("padding", 0)),
        )
    if op == "Gemm":
        return FCLayer(
            name=name, inputs=inputs,
            in_features=int(attrs["in_features"]),
            out_features=int(attrs["out_features"]),
        )
    if op in ("MaxPool", "AveragePool"):
        return PoolLayer(
            name=name, inputs=inputs,
            kernel=int(attrs["kernel"]),
            stride=int(attrs.get("stride", attrs["kernel"])),
            padding=int(attrs.get("padding", 0)),
            mode="max" if op == "MaxPool" else "avg",
        )
    if op == "Relu":
        return ReluLayer(name=name, inputs=inputs)
    if op == "Add":
        return AddLayer(name=name, inputs=inputs)
    if op == "Concat":
        return ConcatLayer(name=name, inputs=inputs)
    return FlattenLayer(name=name, inputs=inputs)


def model_from_json(document: Union[str, Dict[str, Any]]) -> CNNModel:
    """Parse a JSON document (string or dict) into a :class:`CNNModel`."""
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ModelError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ModelError("model document must be a JSON object")

    for key in ("name", "input_shape", "nodes"):
        if key not in document:
            raise ModelError(f"model document missing {key!r}")

    input_shape = tuple(int(d) for d in document["input_shape"])
    if len(input_shape) != 3:
        raise ModelError(f"input_shape must have 3 dims, got {input_shape}")

    layers: List[Layer] = []
    channels = input_shape[0]
    for node in document["nodes"]:
        layer = _node_to_layer(node, channels)
        if isinstance(layer, ConvLayer):
            channels = layer.out_channels
        layers.append(layer)

    return CNNModel(
        name=str(document["name"]),
        layers=layers,
        input_shape=input_shape,  # type: ignore[arg-type]
        act_precision=int(document.get("act_precision", 16)),
        weight_precision=int(document.get("weight_precision", 16)),
    )


def _layer_to_node(layer: Layer) -> Dict[str, Any]:
    """Encode one layer as a JSON node."""
    node: Dict[str, Any] = {"name": layer.name, "inputs": list(layer.inputs)}
    if isinstance(layer, ConvLayer):
        node["op"] = "Conv"
        node["attrs"] = {
            "kernel": layer.kernel,
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "stride": layer.stride,
            "padding": layer.padding,
        }
    elif isinstance(layer, FCLayer):
        node["op"] = "Gemm"
        node["attrs"] = {
            "in_features": layer.in_features,
            "out_features": layer.out_features,
        }
    elif isinstance(layer, PoolLayer):
        node["op"] = "MaxPool" if layer.mode == "max" else "AveragePool"
        node["attrs"] = {
            "kernel": layer.kernel,
            "stride": layer.stride,
            "padding": layer.padding,
        }
    else:
        node["op"] = _KIND_TO_OP[layer.kind]
        node["attrs"] = {}
    return node


def model_to_json(model: CNNModel, indent: int = 2) -> str:
    """Serialize a model to the JSON interchange format."""
    document = {
        "name": model.name,
        "input_shape": list(model.input_shape),
        "act_precision": model.act_precision,
        "weight_precision": model.weight_precision,
        "nodes": [_layer_to_node(l) for l in model.topo_order],
    }
    return json.dumps(document, indent=indent)


def load_model(path: Union[str, Path]) -> CNNModel:
    """Read a model document from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return model_from_json(handle.read())


def save_model(model: CNNModel, path: Union[str, Path]) -> None:
    """Write a model document to a file path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(model_to_json(model))
