"""Model zoo: the paper's five benchmarks plus CIFAR variants.

The DATE'24 evaluation uses AlexNet, VGG13, VGG16, MSRA and ResNet18 with
16-bit quantification (§V), all at ImageNet resolution, plus CIFAR-10/100
variants of AlexNet/VGG16/ResNet18 for the Gibbon comparison (Table V).

"MSRA" is the 22-layer PReLU-net model A of He et al., ICCV 2015 ("Delving
deep into rectifiers"); we build its convolutional trunk, which is what a
PIM weight-mapping flow consumes.

All builders return fully validated, shape-inferred :class:`CNNModel`
instances. A declarative :func:`build_model` helper keeps the per-network
code compact and is also part of the public API for user-defined models.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ModelError
from repro.nn.layers import (
    AddLayer,
    ConvLayer,
    FCLayer,
    FlattenLayer,
    Layer,
    PoolLayer,
    ReluLayer,
)
from repro.nn.model import CNNModel

# A sequential spec entry is one of:
#   ("conv", out_channels, kernel, stride, padding)
#   ("pool", kernel, stride)  - max pooling
#   ("avgpool", kernel, stride)
#   ("relu",)
#   ("flatten",)
#   ("fc", out_features)
SpecEntry = Tuple[Union[str, int], ...]


def build_model(
    name: str,
    spec: Sequence[SpecEntry],
    input_shape: Tuple[int, int, int],
    act_precision: int = 16,
    weight_precision: int = 16,
) -> CNNModel:
    """Build a sequential CNN from a compact spec.

    Channel and feature counts are inferred by threading the shape through
    the spec, so entries only state what changes.
    """
    layers: List[Layer] = []
    prev = "input"
    channels, height, width = input_shape
    counters = {"conv": 0, "pool": 0, "relu": 0, "fc": 0, "flatten": 0}

    def fresh(kind: str) -> str:
        counters[kind] += 1
        return f"{kind}{counters[kind]}"

    for entry in spec:
        op = entry[0]
        if op == "conv":
            _, out_ch, kernel, stride, padding = entry
            lname = fresh("conv")
            layers.append(
                ConvLayer(
                    name=lname,
                    inputs=(prev,),
                    kernel=int(kernel),
                    in_channels=channels,
                    out_channels=int(out_ch),
                    stride=int(stride),
                    padding=int(padding),
                )
            )
            height = (height + 2 * int(padding) - int(kernel)) // int(stride) + 1
            width = (width + 2 * int(padding) - int(kernel)) // int(stride) + 1
            channels = int(out_ch)
            prev = lname
        elif op in ("pool", "avgpool"):
            _, kernel, stride = entry
            lname = fresh("pool")
            layers.append(
                PoolLayer(
                    name=lname,
                    inputs=(prev,),
                    kernel=int(kernel),
                    stride=int(stride),
                    mode="max" if op == "pool" else "avg",
                )
            )
            height = (height - int(kernel)) // int(stride) + 1
            width = (width - int(kernel)) // int(stride) + 1
            prev = lname
        elif op == "relu":
            lname = fresh("relu")
            layers.append(ReluLayer(name=lname, inputs=(prev,)))
            prev = lname
        elif op == "flatten":
            lname = fresh("flatten")
            layers.append(FlattenLayer(name=lname, inputs=(prev,)))
            channels, height, width = channels * height * width, 1, 1
            prev = lname
        elif op == "fc":
            _, out_features = entry
            lname = fresh("fc")
            layers.append(
                FCLayer(
                    name=lname,
                    inputs=(prev,),
                    in_features=channels * height * width,
                    out_features=int(out_features),
                )
            )
            channels, height, width = int(out_features), 1, 1
            prev = lname
        else:
            raise ModelError(f"unknown spec op {op!r}")

    return CNNModel(
        name=name,
        layers=layers,
        input_shape=input_shape,
        act_precision=act_precision,
        weight_precision=weight_precision,
    )


def _vgg_block(out_ch: int, convs: int) -> List[SpecEntry]:
    """``convs`` 3x3 same-padding convolutions then 2x2 max pooling."""
    block: List[SpecEntry] = []
    for _ in range(convs):
        block.append(("conv", out_ch, 3, 1, 1))
        block.append(("relu",))
    block.append(("pool", 2, 2))
    return block


def alexnet() -> CNNModel:
    """AlexNet (Krizhevsky et al.) at 227x227, single-tower layout."""
    spec: List[SpecEntry] = [
        ("conv", 96, 11, 4, 0), ("relu",), ("pool", 3, 2),
        ("conv", 256, 5, 1, 2), ("relu",), ("pool", 3, 2),
        ("conv", 384, 3, 1, 1), ("relu",),
        ("conv", 384, 3, 1, 1), ("relu",),
        ("conv", 256, 3, 1, 1), ("relu",), ("pool", 3, 2),
        ("flatten",),
        ("fc", 4096), ("relu",),
        ("fc", 4096), ("relu",),
        ("fc", 1000),
    ]
    return build_model("alexnet", spec, (3, 227, 227))


def vgg13() -> CNNModel:
    """VGG13 (configuration B of Simonyan & Zisserman) at 224x224."""
    spec: List[SpecEntry] = []
    for out_ch, convs in ((64, 2), (128, 2), (256, 2), (512, 2), (512, 2)):
        spec.extend(_vgg_block(out_ch, convs))
    spec += [("flatten",), ("fc", 4096), ("relu",),
             ("fc", 4096), ("relu",), ("fc", 1000)]
    return build_model("vgg13", spec, (3, 224, 224))


def vgg16() -> CNNModel:
    """VGG16 (configuration D) at 224x224."""
    spec: List[SpecEntry] = []
    for out_ch, convs in ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3)):
        spec.extend(_vgg_block(out_ch, convs))
    spec += [("flatten",), ("fc", 4096), ("relu",),
             ("fc", 4096), ("relu",), ("fc", 1000)]
    return build_model("vgg16", spec, (3, 224, 224))


def msra() -> CNNModel:
    """MSRA PReLU-net model A (He et al., ICCV 2015) convolutional trunk.

    Model A: a 7x7/2 stem then 3x(conv 64) at 56^2, 4x(conv 128),
    6x(conv 256), 3x(conv 512) with 2x2 pooling between stages, and the
    VGG-style classifier head. PReLU is modeled as ReLU for workload
    purposes (identical element count on the ALU path).
    """
    spec: List[SpecEntry] = [("conv", 96, 7, 2, 3), ("relu",), ("pool", 3, 2)]
    for out_ch, convs in ((96, 3), (192, 4), (384, 6), (512, 3)):
        for _ in range(convs):
            spec.append(("conv", out_ch, 3, 1, 1))
            spec.append(("relu",))
        spec.append(("pool", 2, 2))
    # spatial size after stem (112 -> 56) and four pools: 56/2/2/2/2 = 3
    spec += [("flatten",), ("fc", 4096), ("relu",),
             ("fc", 4096), ("relu",), ("fc", 1000)]
    return build_model("msra", spec, (3, 224, 224))


def _resnet_basic_block(
    layers: List[Layer],
    prefix: str,
    prev: str,
    in_ch: int,
    out_ch: int,
    stride: int,
) -> str:
    """Append one basic residual block; returns the output layer name."""
    conv1 = ConvLayer(
        name=f"{prefix}_conv1", inputs=(prev,), kernel=3,
        in_channels=in_ch, out_channels=out_ch, stride=stride, padding=1,
    )
    relu1 = ReluLayer(name=f"{prefix}_relu1", inputs=(conv1.name,))
    conv2 = ConvLayer(
        name=f"{prefix}_conv2", inputs=(relu1.name,), kernel=3,
        in_channels=out_ch, out_channels=out_ch, stride=1, padding=1,
    )
    layers.extend([conv1, relu1, conv2])

    if stride != 1 or in_ch != out_ch:
        shortcut = ConvLayer(
            name=f"{prefix}_down", inputs=(prev,), kernel=1,
            in_channels=in_ch, out_channels=out_ch, stride=stride, padding=0,
        )
        layers.append(shortcut)
        skip_name = shortcut.name
    else:
        skip_name = prev

    add = AddLayer(name=f"{prefix}_add", inputs=(conv2.name, skip_name))
    relu2 = ReluLayer(name=f"{prefix}_relu2", inputs=(add.name,))
    layers.extend([add, relu2])
    return relu2.name


def resnet18(input_shape: Tuple[int, int, int] = (3, 224, 224),
             num_classes: int = 1000,
             name: str = "resnet18") -> CNNModel:
    """ResNet18 (He et al., CVPR 2016) with basic blocks."""
    layers: List[Layer] = []
    stem = ConvLayer(
        name="conv1", inputs=("input",), kernel=7,
        in_channels=input_shape[0], out_channels=64, stride=2, padding=3,
    )
    relu = ReluLayer(name="relu1", inputs=("conv1",))
    pool = PoolLayer(name="pool1", inputs=("relu1",), kernel=3, stride=2,
                     padding=1)
    layers.extend([stem, relu, pool])
    prev = "pool1"

    in_ch = 64
    for stage, (out_ch, stride) in enumerate(
        ((64, 1), (128, 2), (256, 2), (512, 2)), start=1
    ):
        for block in range(2):
            blk_stride = stride if block == 0 else 1
            prev = _resnet_basic_block(
                layers, f"s{stage}b{block}", prev, in_ch, out_ch, blk_stride
            )
            in_ch = out_ch

    # global average pooling approximated by an avg pool over the final map
    model_probe = CNNModel(name="_probe", layers=list(layers),
                           input_shape=input_shape)
    final_shape = model_probe.layer(prev).output_shape
    assert final_shape is not None
    gap = PoolLayer(name="gap", inputs=(prev,), kernel=final_shape[1],
                    stride=final_shape[1], mode="avg")
    flat = FlattenLayer(name="flatten1", inputs=("gap",))
    head = FCLayer(name="fc1", inputs=("flatten1",),
                   in_features=512, out_features=num_classes)
    layers.extend([gap, flat, head])
    return CNNModel(name=name, layers=layers, input_shape=input_shape)


def lenet5() -> CNNModel:
    """LeNet-5 at 32x32 - the small smoke-test network used by tests."""
    spec: List[SpecEntry] = [
        ("conv", 6, 5, 1, 0), ("relu",), ("pool", 2, 2),
        ("conv", 16, 5, 1, 0), ("relu",), ("pool", 2, 2),
        ("flatten",),
        ("fc", 120), ("relu",),
        ("fc", 84), ("relu",),
        ("fc", 10),
    ]
    return build_model("lenet5", spec, (1, 32, 32))


def alexnet_cifar() -> CNNModel:
    """CIFAR-scale AlexNet (32x32), as used in the Gibbon comparison."""
    spec: List[SpecEntry] = [
        ("conv", 64, 3, 1, 1), ("relu",), ("pool", 2, 2),
        ("conv", 192, 3, 1, 1), ("relu",), ("pool", 2, 2),
        ("conv", 384, 3, 1, 1), ("relu",),
        ("conv", 256, 3, 1, 1), ("relu",),
        ("conv", 256, 3, 1, 1), ("relu",), ("pool", 2, 2),
        ("flatten",),
        ("fc", 1024), ("relu",),
        ("fc", 512), ("relu",),
        ("fc", 10),
    ]
    return build_model("alexnet_cifar", spec, (3, 32, 32))


def vgg8() -> CNNModel:
    """CIFAR-scale VGG8: four conv stages (the last two doubled) and a
    compact two-layer classifier — 8 weighted layers in total. Small
    enough for golden fixtures of whole-DSE artifacts (the Pareto-front
    snapshot), large enough that its front has real trade-offs."""
    spec: List[SpecEntry] = []
    for out_ch, convs in ((64, 1), (128, 1), (256, 2), (512, 2)):
        spec.extend(_vgg_block(out_ch, convs))
    spec += [("flatten",), ("fc", 256), ("relu",), ("fc", 10)]
    return build_model("vgg8", spec, (3, 32, 32))


def vgg16_cifar() -> CNNModel:
    """CIFAR-scale VGG16 (32x32 input, compact classifier head)."""
    spec: List[SpecEntry] = []
    for out_ch, convs in ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3)):
        spec.extend(_vgg_block(out_ch, convs))
    spec += [("flatten",), ("fc", 512), ("relu",), ("fc", 10)]
    return build_model("vgg16_cifar", spec, (3, 32, 32))


def resnet18_cifar() -> CNNModel:
    """CIFAR-scale ResNet18 (3x3 stem, no initial pooling)."""
    layers: List[Layer] = []
    stem = ConvLayer(name="conv1", inputs=("input",), kernel=3,
                     in_channels=3, out_channels=64, stride=1, padding=1)
    relu = ReluLayer(name="relu1", inputs=("conv1",))
    layers.extend([stem, relu])
    prev = "relu1"
    in_ch = 64
    for stage, (out_ch, stride) in enumerate(
        ((64, 1), (128, 2), (256, 2), (512, 2)), start=1
    ):
        for block in range(2):
            blk_stride = stride if block == 0 else 1
            prev = _resnet_basic_block(
                layers, f"s{stage}b{block}", prev, in_ch, out_ch, blk_stride
            )
            in_ch = out_ch
    model_probe = CNNModel(name="_probe", layers=list(layers),
                           input_shape=(3, 32, 32))
    final_shape = model_probe.layer(prev).output_shape
    assert final_shape is not None
    gap = PoolLayer(name="gap", inputs=(prev,), kernel=final_shape[1],
                    stride=final_shape[1], mode="avg")
    flat = FlattenLayer(name="flatten1", inputs=("gap",))
    head = FCLayer(name="fc1", inputs=("flatten1",),
                   in_features=512, out_features=10)
    layers.extend([gap, flat, head])
    return CNNModel(name="resnet18_cifar", layers=layers,
                    input_shape=(3, 32, 32))


_REGISTRY = {
    "alexnet": alexnet,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "msra": msra,
    "resnet18": resnet18,
    "lenet5": lenet5,
    "alexnet_cifar": alexnet_cifar,
    "vgg8": vgg8,
    "vgg16_cifar": vgg16_cifar,
    "resnet18_cifar": resnet18_cifar,
}


def by_name(name: str) -> CNNModel:
    """Look a zoo model up by name (e.g. for CLI-style harnesses)."""
    if name not in _REGISTRY:
        raise ModelError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]()


def available_models() -> List[str]:
    """Names accepted by :func:`by_name`."""
    return sorted(_REGISTRY)


def model_catalog() -> List[dict]:
    """Machine-readable zoo description (one dict per model).

    The JSON currency of ``python -m repro models --json`` and the
    serve API's ``GET /models`` — scripted clients use it to build
    batch manifests without parsing the human table.
    """
    from repro.nn.workload import model_macs, model_weight_count

    catalog = []
    for name in available_models():
        model = _REGISTRY[name]()
        catalog.append({
            "name": name,
            "input_shape": list(model.input_shape),
            "weighted_layers": model.num_weighted_layers,
            "gmacs": round(model_macs(model) / 1e9, 4),
            "million_weights": round(model_weight_count(model) / 1e6, 3),
            "act_precision": model.act_precision,
            "weight_precision": model.weight_precision,
        })
    return catalog
