"""CNN model substrate.

PIMSYN takes a trained, quantified CNN structure as input (the paper uses
the ONNX format). This subpackage provides:

- :mod:`repro.nn.layers` — layer dataclasses with the geometry PIMSYN
  consumes (kernel size, channels, output feature-map size);
- :mod:`repro.nn.shapes` — shape inference that fills those geometries in
  from an input resolution;
- :mod:`repro.nn.model` — the :class:`CNNModel` container and validation;
- :mod:`repro.nn.zoo` — the paper's five benchmark networks (AlexNet,
  VGG13, VGG16, MSRA, ResNet18) for ImageNet plus CIFAR variants for the
  Gibbon comparison;
- :mod:`repro.nn.onnx_io` — a lightweight ONNX-like JSON interchange;
- :mod:`repro.nn.workload` — MAC counts and data-access volumes.
"""

from repro.nn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    FCLayer,
    FlattenLayer,
    Layer,
    LayerKind,
    PoolLayer,
    ReluLayer,
)
from repro.nn.model import CNNModel
from repro.nn.onnx_io import model_from_json, model_to_json
from repro.nn.workload import (
    layer_access_volume,
    layer_macs,
    model_macs,
    model_weight_count,
)
from repro.nn.zoo import (
    alexnet,
    alexnet_cifar,
    build_model,
    lenet5,
    msra,
    resnet18,
    resnet18_cifar,
    vgg8,
    vgg13,
    vgg16,
    vgg16_cifar,
)

__all__ = [
    "AddLayer",
    "ConcatLayer",
    "ConvLayer",
    "FCLayer",
    "FlattenLayer",
    "Layer",
    "LayerKind",
    "PoolLayer",
    "ReluLayer",
    "CNNModel",
    "model_from_json",
    "model_to_json",
    "layer_access_volume",
    "layer_macs",
    "model_macs",
    "model_weight_count",
    "alexnet",
    "alexnet_cifar",
    "build_model",
    "lenet5",
    "msra",
    "resnet18",
    "resnet18_cifar",
    "vgg8",
    "vgg13",
    "vgg16",
    "vgg16_cifar",
]
