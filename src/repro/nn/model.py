"""The :class:`CNNModel` container.

A model is a named DAG of layers plus the quantification precisions the
paper treats as fixed inputs (16-bit activations and weights in all
experiments). The container validates the graph, topologically sorts it,
runs shape inference, and exposes the *weighted-layer* view that all four
synthesis stages operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.nn.layers import Layer, LayerKind
from repro.nn.shapes import Shape, infer_shapes


@dataclass
class CNNModel:
    """A validated, shape-inferred CNN description.

    Parameters
    ----------
    name:
        Model identifier (e.g. ``"vgg16"``).
    layers:
        Layers in any order; construction topologically sorts them.
    input_shape:
        ``(channels, height, width)`` of the network input.
    act_precision / weight_precision:
        Quantification bit-widths; the paper's experiments use 16/16.
    """

    name: str
    layers: Sequence[Layer]
    input_shape: Shape
    act_precision: int = 16
    weight_precision: int = 16
    _by_name: Dict[str, Layer] = field(init=False, repr=False)
    _order: List[Layer] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.act_precision <= 0 or self.weight_precision <= 0:
            raise ModelError("precisions must be positive")
        self._by_name = {}
        for layer in self.layers:
            layer.validate()
            if layer.name == "input":
                raise ModelError('"input" is reserved for the network input')
            if layer.name in self._by_name:
                raise ModelError(f"duplicate layer name {layer.name!r}")
            self._by_name[layer.name] = layer
        self._order = self._toposort()
        infer_shapes(self._order, self.input_shape)

    def _toposort(self) -> List[Layer]:
        """Kahn's algorithm; raises on cycles and dangling references."""
        indegree: Dict[str, int] = {}
        consumers: Dict[str, List[str]] = {}
        for layer in self._by_name.values():
            count = 0
            for src in layer.inputs:
                if src == "input":
                    continue
                if src not in self._by_name:
                    raise ModelError(
                        f"layer {layer.name!r} references unknown input {src!r}"
                    )
                consumers.setdefault(src, []).append(layer.name)
                count += 1
            indegree[layer.name] = count

        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[Layer] = []
        while ready:
            name = ready.pop(0)
            order.append(self._by_name[name])
            for consumer in consumers.get(name, []):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    # Insertion keeps a deterministic order without a heap;
                    # model graphs are small (tens of layers).
                    ready.append(consumer)
                    ready.sort()
        if len(order) != len(self._by_name):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise ModelError(f"layer graph has a cycle involving {stuck}")
        return order

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Layer]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        if name not in self._by_name:
            raise ModelError(f"no layer named {name!r} in {self.name!r}")
        return self._by_name[name]

    @property
    def topo_order(self) -> List[Layer]:
        """Layers in topological (producer-first) order."""
        return list(self._order)

    @property
    def weighted_layers(self) -> List[Layer]:
        """Conv + FC layers, in topological order.

        This is the ``L``-element vector view the paper indexes with ``i``
        in ``WtDup_i``, ``MacAlloc_i`` and ``CompAlloc_i``.
        """
        return [l for l in self._order if l.is_weighted]

    @property
    def num_weighted_layers(self) -> int:
        return len(self.weighted_layers)

    def weighted_index(self, name: str) -> int:
        """Position of a weighted layer in the ``weighted_layers`` vector."""
        for i, layer in enumerate(self.weighted_layers):
            if layer.name == name:
                return i
        raise ModelError(f"{name!r} is not a weighted layer of {self.name!r}")

    def producer_weighted_index(self, layer_name: str) -> Optional[int]:
        """Index of the nearest weighted ancestor feeding ``layer_name``.

        Walks backwards through non-weighted layers (pool/relu/flatten) to
        find which weighted layer's outputs this layer actually consumes.
        Returns ``None`` when the chain reaches the network input. For
        multi-input layers the *latest* weighted producer is returned,
        matching the pipeline-dependency structure (a join can only fire
        once its slowest producer has data).
        """
        best: Optional[int] = None
        stack = list(self.layer(layer_name).inputs)
        seen = set()
        while stack:
            src = stack.pop()
            if src == "input" or src in seen:
                continue
            seen.add(src)
            producer = self._by_name[src]
            if producer.is_weighted:
                idx = self.weighted_index(src)
                best = idx if best is None else max(best, idx)
            else:
                stack.extend(producer.inputs)
        return best

    def interlayer_edges(self) -> List[Tuple[int, int]]:
        """Weighted-layer dependency edges ``(producer_idx, consumer_idx)``.

        Non-weighted layers are transparent: ``conv1 -> relu -> pool ->
        conv2`` yields the single edge ``(0, 1)``. These edges drive the
        inter-layer pipeline dependencies in dataflow compilation and the
        inter-macro ``transfer`` IRs.
        """
        edges = set()
        for idx, layer in enumerate(self.weighted_layers):
            producers = self._weighted_producers(layer.name)
            for p in producers:
                edges.add((p, idx))
        return sorted(edges)

    def _weighted_producers(self, layer_name: str) -> List[int]:
        """All distinct weighted ancestors reachable through vector ops."""
        found = set()
        stack = list(self.layer(layer_name).inputs)
        seen = set()
        while stack:
            src = stack.pop()
            if src == "input" or src in seen:
                continue
            seen.add(src)
            producer = self._by_name[src]
            if producer.is_weighted:
                found.add(self.weighted_index(src))
            else:
                stack.extend(producer.inputs)
        return sorted(found)

    def vector_ops_after(self, weighted_name: str) -> List[Layer]:
        """Non-weighted layers on the path out of a weighted layer.

        Used by components allocation to charge pooling/ReLU/add workload
        to the producing layer's ALU budget (those ops run on the macro
        that computed the activations).
        """
        out: List[Layer] = []
        frontier = [weighted_name]
        seen = set()
        while frontier:
            src = frontier.pop()
            for layer in self._order:
                if src in layer.inputs and layer.name not in seen:
                    if layer.is_weighted:
                        continue
                    seen.add(layer.name)
                    out.append(layer)
                    frontier.append(layer.name)
        return out

    def summary(self) -> str:
        """Human-readable per-layer table (name, kind, shape, weights)."""
        lines = [f"model {self.name}  input={self.input_shape} "
                 f"act={self.act_precision}b wt={self.weight_precision}b"]
        for layer in self._order:
            shape = layer.output_shape
            tag = layer.kind.value
            weights = getattr(layer, "weight_count", 0)
            lines.append(
                f"  {layer.name:<14} {tag:<8} out={shape} weights={weights}"
            )
        return "\n".join(lines)
