"""PIM-friendly intermediate representations (Table II) and the IR DAG.

Dataflow compilation (§IV-B) turns a CNN plus a weight-duplication
strategy into a DAG whose nodes are the seven IRs of Table II —
computation (``MVM``, ``ADC``, ``ALU``), intra-macro communication
(``load``, ``store``) and inter-macro communication (``merge``,
``transfer``) — and whose edges are the inter-layer / inter-block /
inter-bit / inter-operation dependencies of Fig. 4. Each IR corresponds
to one hardware intrinsic, so hardware exploration reduces to resource
allocation for IRs and performance estimation to DAG depth with IR
latencies (§IV-B).
"""

from repro.ir.nodes import ALUOP_KINDS, IRNode, IROp
from repro.ir.dag import IRDag
from repro.ir.builder import DataflowBuilder, DataflowSpec
from repro.ir.lint import lint_dag

__all__ = [
    "ALUOP_KINDS",
    "IRNode",
    "IROp",
    "IRDag",
    "DataflowBuilder",
    "DataflowSpec",
    "lint_dag",
]
