"""IR DAG serialization: JSON for tooling, DOT for visualization.

The IR-based DAG is the interface between the synthesis stages
(§IV-B: "IR acts as the interface between high-level algorithms and
low-level implementations"); exporting it lets external tools — or a
reviewer with Graphviz — inspect exactly what the compiler produced.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.errors import IRError
from repro.ir.dag import IRDag
from repro.ir.nodes import IRNode, IROp

_OP_COLORS = {
    IROp.MVM: "lightblue",
    IROp.ADC: "lightyellow",
    IROp.ALU: "lightgreen",
    IROp.LOAD: "lightgrey",
    IROp.STORE: "lightgrey",
    IROp.MERGE: "orange",
    IROp.TRANSFER: "salmon",
}


def _node_payload(node: IRNode) -> Dict:
    payload = {
        "id": node.node_id,
        "op": node.op.value,
        "layer": node.layer,
        "cnt": node.cnt,
        "bit": node.bit,
    }
    if node.op == IROp.MVM:
        payload["xb_num"] = node.xb_num
    if node.vec_width:
        payload["vec_width"] = node.vec_width
    if node.aluop:
        payload["aluop"] = node.aluop
    if node.op == IROp.MERGE:
        payload["macro_num"] = node.macro_num
    if node.op == IROp.TRANSFER:
        payload["src"] = node.src
        payload["dst"] = node.dst
        payload["dst_layer"] = node.dst_layer
    return payload


def dag_to_json(dag: IRDag, indent: Optional[int] = 2) -> str:
    """Serialize a DAG as ``{"nodes": [...], "edges": [[src, dst]...]}``."""
    nodes = [_node_payload(node) for node in dag]
    edges = [
        [node.node_id, succ.node_id]
        for node in dag
        for succ in dag.successors(node)
    ]
    return json.dumps({"nodes": nodes, "edges": edges}, indent=indent)


def dag_from_json(document: str) -> IRDag:
    """Rebuild a DAG from :func:`dag_to_json` output."""
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise IRError(f"invalid DAG JSON: {exc}") from exc
    if not isinstance(payload, dict) or "nodes" not in payload:
        raise IRError("DAG document must contain a 'nodes' list")

    dag = IRDag()
    id_map: Dict[int, IRNode] = {}
    for raw in payload["nodes"]:
        try:
            node = IRNode(
                op=IROp(raw["op"]),
                layer=raw["layer"],
                cnt=raw.get("cnt", 0),
                bit=raw.get("bit", 0),
                xb_num=raw.get("xb_num", 0),
                vec_width=raw.get("vec_width", 0),
                aluop=raw.get("aluop"),
                macro_num=raw.get("macro_num", 0),
                src=raw.get("src", -1),
                dst=raw.get("dst", -1),
                dst_layer=raw.get("dst_layer", -1),
            )
        except (KeyError, ValueError) as exc:
            raise IRError(f"malformed IR node {raw!r}: {exc}") from exc
        id_map[raw["id"]] = dag.add_node(node)

    for src, dst in payload.get("edges", []):
        if src not in id_map or dst not in id_map:
            raise IRError(f"edge references unknown node: {src}->{dst}")
        dag.add_edge(id_map[src], id_map[dst])
    dag.validate_acyclic()
    return dag


def dag_to_dot(dag: IRDag, max_nodes: int = 500) -> str:
    """Render the DAG in Graphviz DOT (op-colored, layer-clustered).

    Refuses DAGs beyond ``max_nodes`` — a windowed LeNet DAG renders
    fine, a full VGG16 DAG would melt Graphviz.
    """
    if len(dag) > max_nodes:
        raise IRError(
            f"DAG has {len(dag)} nodes; DOT export capped at "
            f"{max_nodes} (raise max_nodes explicitly if you mean it)"
        )
    lines = ["digraph ir {", "  rankdir=LR;", "  node [style=filled];"]
    layers: Dict[int, list] = {}
    for node in dag:
        layers.setdefault(node.layer, []).append(node)
    for layer, nodes in sorted(layers.items()):
        lines.append(f"  subgraph cluster_L{layer} {{")
        lines.append(f'    label="layer {layer}";')
        for node in nodes:
            color = _OP_COLORS[node.op]
            label = f"{node.op.value}\\ncnt={node.cnt} bit={node.bit}"
            lines.append(
                f'    n{node.node_id} [label="{label}", '
                f'fillcolor={color}];'
            )
        lines.append("  }")
    for node in dag:
        for succ in dag.successors(node):
            lines.append(f"  n{node.node_id} -> n{succ.node_id};")
    lines.append("}")
    return "\n".join(lines)
