"""The IR-based dataflow DAG.

A thin, fast digraph specialized for IR nodes: integer node ids,
adjacency lists, cycle-checked topological order, and critical-path
(depth) computation under a caller-supplied latency function — the
performance-estimation primitive of §IV-B ("the performance of
synthesized accelerators can be estimated by the depth of the IR-based
DAG and the IRs' latencies").
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import IRError
from repro.ir.nodes import IRNode, IROp


class IRDag:
    """Directed acyclic graph of :class:`IRNode` objects."""

    def __init__(self) -> None:
        self._nodes: List[IRNode] = []
        self._succ: List[List[int]] = []
        self._pred: List[List[int]] = []
        self._topo_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: IRNode) -> IRNode:
        """Insert a node, assigning its ``node_id``; returns the stored copy."""
        node_id = len(self._nodes)
        stored = IRNode(
            op=node.op, layer=node.layer, cnt=node.cnt, bit=node.bit,
            xb_num=node.xb_num, vec_width=node.vec_width, aluop=node.aluop,
            macro_num=node.macro_num, src=node.src, dst=node.dst,
            dst_layer=node.dst_layer, node_id=node_id,
        )
        self._nodes.append(stored)
        self._succ.append([])
        self._pred.append([])
        self._topo_cache = None
        return stored

    def add_edge(self, src: IRNode, dst: IRNode) -> None:
        """Add a dependency edge ``src -> dst`` (idempotent)."""
        sid, did = src.node_id, dst.node_id
        if not (0 <= sid < len(self._nodes)) or not (0 <= did < len(self._nodes)):
            raise IRError("edge endpoints must be nodes of this DAG")
        if sid == did:
            raise IRError(f"self-edge on node {sid} ({src.describe()})")
        if did not in self._succ[sid]:
            self._succ[sid].append(did)
            self._pred[did].append(sid)
            self._topo_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[IRNode]:
        return iter(self._nodes)

    @property
    def nodes(self) -> List[IRNode]:
        return list(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ)

    def node(self, node_id: int) -> IRNode:
        if not 0 <= node_id < len(self._nodes):
            raise IRError(f"no node with id {node_id}")
        return self._nodes[node_id]

    def successors(self, node: IRNode) -> List[IRNode]:
        return [self._nodes[i] for i in self._succ[node.node_id]]

    def predecessors(self, node: IRNode) -> List[IRNode]:
        return [self._nodes[i] for i in self._pred[node.node_id]]

    def sources(self) -> List[IRNode]:
        """Nodes with no predecessors."""
        return [n for n in self._nodes if not self._pred[n.node_id]]

    def sinks(self) -> List[IRNode]:
        """Nodes with no successors."""
        return [n for n in self._nodes if not self._succ[n.node_id]]

    def nodes_of_op(self, op: IROp) -> List[IRNode]:
        return [n for n in self._nodes if n.op == op]

    def nodes_of_layer(self, layer: int) -> List[IRNode]:
        return [n for n in self._nodes if n.layer == layer]

    def op_histogram(self) -> Dict[IROp, int]:
        hist: Dict[IROp, int] = {}
        for node in self._nodes:
            hist[node.op] = hist.get(node.op, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def topological_order(self) -> List[IRNode]:
        """Kahn topological order; raises :class:`IRError` on cycles."""
        if self._topo_cache is None:
            indegree = [len(p) for p in self._pred]
            ready = [i for i, deg in enumerate(indegree) if deg == 0]
            order: List[int] = []
            head = 0
            ready_list = list(ready)
            while head < len(ready_list):
                nid = ready_list[head]
                head += 1
                order.append(nid)
                for succ in self._succ[nid]:
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        ready_list.append(succ)
            if len(order) != len(self._nodes):
                raise IRError(
                    f"IR DAG has a cycle ({len(self._nodes) - len(order)} "
                    "nodes unreachable in topological sort)"
                )
            self._topo_cache = order
        return [self._nodes[i] for i in self._topo_cache]

    def validate_acyclic(self) -> None:
        """Raise if the graph contains a cycle."""
        self.topological_order()

    def depth(self) -> int:
        """Longest path length in nodes (unit latencies)."""
        return self.critical_path_length(lambda _node: 1.0).__int__()

    def critical_path_length(
        self, latency: Callable[[IRNode], float]
    ) -> float:
        """Longest path under ``latency`` — the §IV-B performance estimate.

        This is the *dependency-limited* bound; resource contention is
        added by the behavior-level simulator in :mod:`repro.sim`.
        """
        finish: Dict[int, float] = {}
        longest = 0.0
        for node in self.topological_order():
            nid = node.node_id
            start = 0.0
            for pred in self._pred[nid]:
                start = max(start, finish[pred])
            finish[nid] = start + latency(node)
            longest = max(longest, finish[nid])
        return longest

    def critical_path(
        self, latency: Callable[[IRNode], float]
    ) -> List[IRNode]:
        """The nodes on one longest path (for diagnostics)."""
        finish: Dict[int, float] = {}
        via: Dict[int, Optional[int]] = {}
        for node in self.topological_order():
            nid = node.node_id
            best_pred, start = None, 0.0
            for pred in self._pred[nid]:
                if finish[pred] > start:
                    start, best_pred = finish[pred], pred
            finish[nid] = start + latency(node)
            via[nid] = best_pred
        if not finish:
            return []
        tail = max(finish, key=lambda nid: finish[nid])
        path = []
        cursor: Optional[int] = tail
        while cursor is not None:
            path.append(self._nodes[cursor])
            cursor = via[cursor]
        path.reverse()
        return path

    def ancestors(self, node: IRNode) -> Set[int]:
        """All transitive predecessors' ids (used by lint checks)."""
        seen: Set[int] = set()
        stack = list(self._pred[node.node_id])
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self._pred[nid])
        return seen
