"""Structural validation passes over an IR DAG.

The builder is tested directly, but synthesized DAGs also flow through
macro partitioning which splices communication IRs in; ``lint_dag`` is a
defense-in-depth check that any DAG handed to the simulator satisfies the
invariants the paper's dependency model implies.
"""

from __future__ import annotations

from typing import List

from repro.ir.dag import IRDag
from repro.ir.nodes import IRNode, IROp


def lint_dag(dag: IRDag) -> List[str]:
    """Return a list of human-readable violations (empty = clean)."""
    problems: List[str] = []
    problems.extend(_check_acyclic(dag))
    if problems:
        # Remaining checks need a topological order.
        return problems
    problems.extend(_check_block_structure(dag))
    problems.extend(_check_adc_follows_mvm(dag))
    problems.extend(_check_store_reachability(dag))
    problems.extend(_check_transfer_endpoints(dag))
    return problems


def _check_acyclic(dag: IRDag) -> List[str]:
    try:
        dag.validate_acyclic()
        return []
    except Exception as exc:  # noqa: BLE001 - report, not crash
        return [f"cycle: {exc}"]


def _check_block_structure(dag: IRDag) -> List[str]:
    """Every (layer, cnt) block must have exactly one load and one store."""
    problems = []
    seen = {}
    for node in dag:
        if node.op in (IROp.LOAD, IROp.STORE):
            key = (node.op, node.layer, node.cnt)
            seen[key] = seen.get(key, 0) + 1
    for (op, layer, cnt), count in sorted(seen.items(), key=str):
        if count != 1:
            problems.append(
                f"{op.value} L{layer} cnt={cnt} appears {count} times"
            )
    return problems


def _check_adc_follows_mvm(dag: IRDag) -> List[str]:
    """Each ADC must directly consume the matching MVM's analog output."""
    problems = []
    for node in dag.nodes_of_op(IROp.ADC):
        preds = dag.predecessors(node)
        if not any(
            p.op == IROp.MVM and p.layer == node.layer
            and p.cnt == node.cnt and p.bit == node.bit
            for p in preds
        ):
            problems.append(
                f"ADC without matching MVM predecessor: {node.describe()}"
            )
    return problems


def _check_store_reachability(dag: IRDag) -> List[str]:
    """Every store must (transitively) depend on its block's load."""
    problems = []
    loads = {
        (n.layer, n.cnt): n for n in dag.nodes_of_op(IROp.LOAD)
    }
    for store in dag.nodes_of_op(IROp.STORE):
        load = loads.get((store.layer, store.cnt))
        if load is None:
            problems.append(
                f"store without load in block: {store.describe()}"
            )
            continue
        if load.node_id not in dag.ancestors(store):
            problems.append(
                f"store not reachable from its load: {store.describe()}"
            )
    return problems


def _check_transfer_endpoints(dag: IRDag) -> List[str]:
    """Transfers must not be self-loops at the macro level."""
    problems = []
    for node in dag.nodes_of_op(IROp.TRANSFER):
        if node.src == node.dst:
            problems.append(
                f"transfer with src == dst: {node.describe()}"
            )
    return problems
