"""Dataflow compilation: CNN + WtDup + ResDAC -> IR-based DAG (§IV-B).

The three compilation steps of the paper:

1. translate each layer's computation into IRs, indexed by
   ``(layer, cnt, bit)`` — computation-block level and input-bit level
   parallelism (§II-A);
2. establish inter-layer, inter-block, inter-bit and inter-operation
   dependencies (Fig. 4);
3. emit the DAG. Communication IRs (``merge``/``transfer``) are
   supplemented once macro partitioning is known (§IV-C) by passing a
   ``macro_alloc`` to :meth:`DataflowBuilder.build`.

Windowing
---------
An ImageNet conv layer has tens of thousands of computation blocks; the
DAG is therefore built over a *window* of ``max_blocks_per_layer`` blocks
(scaled per layer so that the window covers the same fraction of every
layer's work), which preserves the steady-state pipeline structure the
simulator measures. ``DataflowSpec.total_blocks`` keeps the true counts
for extrapolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, IRError
from repro.hardware.crossbar import crossbar_tiling_summary
from repro.hardware.params import HardwareParams
from repro.ir.dag import IRDag
from repro.ir.nodes import IRNode, IROp
from repro.nn.model import CNNModel
from repro.utils.mathutils import ceil_div


@dataclass
class LayerGeometry:
    """Pre-computed per-layer quantities the builder and evaluator share."""

    index: int
    name: str
    rows: int  # WK*WK*CI (or in_features)
    cols: int  # CO (or out_features)
    out_positions: int  # WO*HO
    wt_dup: int
    set_size: int  # Eq. 1
    row_tiles: int
    col_tiles: int
    bit_slices: int

    @property
    def crossbars(self) -> int:
        """Crossbars this layer occupies: WtDup * set."""
        return self.wt_dup * self.set_size

    @property
    def total_blocks(self) -> int:
        """ceil(WO*HO / WtDup): computation blocks per image (§II-A)."""
        return ceil_div(self.out_positions, self.wt_dup)

    @property
    def outputs_per_block(self) -> int:
        """Output activations one block produces: WtDup * CO."""
        return self.wt_dup * self.cols

    @property
    def inputs_per_block(self) -> int:
        """Input activations one block loads: WtDup * WK^2 * CI."""
        return self.wt_dup * self.rows

    @property
    def conversions_per_block_bit(self) -> int:
        """ADC conversions per block per bit iteration.

        Every active column of every crossbar in every duplicate needs
        one conversion: ``WtDup * row_tiles * bit_slices * CO``.
        """
        return self.wt_dup * self.row_tiles * self.bit_slices * self.cols


@dataclass
class DataflowSpec:
    """Everything stage 2 needs to compile a dataflow.

    ``wt_dup`` is the stage-1 output; ``res_dac`` the Alg. 1 loop
    variable; ``xb_size``/``res_rram`` come from the PIM-related space.
    """

    model: CNNModel
    wt_dup: Sequence[int]
    xb_size: int
    res_rram: int
    res_dac: int
    params: HardwareParams = field(default_factory=HardwareParams)
    max_blocks_per_layer: int = 8

    geometries: List[LayerGeometry] = field(init=False)

    def __post_init__(self) -> None:
        layers = self.model.weighted_layers
        if len(self.wt_dup) != len(layers):
            raise ConfigurationError(
                f"wt_dup has {len(self.wt_dup)} entries for "
                f"{len(layers)} weighted layers"
            )
        if self.max_blocks_per_layer < 1:
            raise ConfigurationError("max_blocks_per_layer must be >= 1")
        self.geometries = []
        for index, layer in enumerate(layers):
            dup = int(self.wt_dup[index])
            if dup < 1:
                raise ConfigurationError(
                    f"layer {layer.name}: WtDup must be >= 1, got {dup}"
                )
            assert layer.output_shape is not None
            _, ho, wo = layer.output_shape
            tiling = crossbar_tiling_summary(
                layer, self.xb_size, self.res_rram,
                self.model.weight_precision,
            )
            cols = getattr(layer, "out_channels", None)
            if cols is None:
                cols = layer.out_features  # type: ignore[attr-defined]
            self.geometries.append(
                LayerGeometry(
                    index=index,
                    name=layer.name,
                    rows=layer.weight_rows,  # type: ignore[attr-defined]
                    cols=cols,
                    out_positions=ho * wo,
                    wt_dup=dup,
                    set_size=tiling.num_crossbars,
                    row_tiles=tiling.row_tiles,
                    col_tiles=tiling.col_tiles,
                    bit_slices=tiling.bit_slices,
                )
            )

    @property
    def bits(self) -> int:
        """Bit-serial iterations per block: ceil(PrecAct / ResDAC)."""
        return ceil_div(self.model.act_precision, self.res_dac)

    @property
    def num_layers(self) -> int:
        return len(self.geometries)

    def window_blocks(self, layer_index: int) -> int:
        """Blocks of this layer inside the simulation window.

        The window covers the same *fraction* of every layer's work so
        the inter-layer pipeline structure in the window matches steady
        state: the layer with the most blocks gets ``max_blocks_per_layer``
        and the others get proportionally fewer (at least one).
        """
        geos = self.geometries
        max_total = max(g.total_blocks for g in geos)
        geo = geos[layer_index]
        if max_total <= self.max_blocks_per_layer:
            return geo.total_blocks
        scaled = math.ceil(
            geo.total_blocks * self.max_blocks_per_layer / max_total
        )
        return max(1, min(scaled, geo.total_blocks))


class DataflowBuilder:
    """Compiles a :class:`DataflowSpec` into an :class:`IRDag`."""

    def __init__(self, spec: DataflowSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def build(
        self, macro_alloc: Optional[Dict[int, List[int]]] = None
    ) -> IRDag:
        """Compile the dataflow DAG.

        Parameters
        ----------
        macro_alloc:
            Optional mapping layer-index -> macro ids (stage-3 output).
            When provided, ``merge`` and ``transfer`` IRs are
            supplemented; without it the DAG contains computation and
            intra-macro IRs only (the stage-2 view).
        """
        spec = self.spec
        dag = IRDag()
        # nodes[layer][cnt] -> dict of the block's named IR nodes
        blocks: List[List[Dict[str, IRNode]]] = []

        for geo in spec.geometries:
            layer_blocks: List[Dict[str, IRNode]] = []
            n_macros = 1
            if macro_alloc and geo.index in macro_alloc:
                n_macros = max(1, len(macro_alloc[geo.index]))
            for cnt in range(spec.window_blocks(geo.index)):
                layer_blocks.append(
                    self._emit_block(dag, geo, cnt, n_macros, macro_alloc)
                )
            blocks.append(layer_blocks)

        self._wire_intra_layer(dag, blocks)
        self._wire_inter_layer(dag, blocks, macro_alloc)
        dag.validate_acyclic()
        return dag

    # ------------------------------------------------------------------
    # Node emission
    # ------------------------------------------------------------------
    def _emit_block(
        self,
        dag: IRDag,
        geo: LayerGeometry,
        cnt: int,
        n_macros: int,
        macro_alloc: Optional[Dict[int, List[int]]],
    ) -> Dict[str, IRNode]:
        """Emit one computation block's IRs and intra-block edges."""
        spec = self.spec
        nodes: Dict[str, IRNode] = {}

        load = dag.add_node(
            IRNode(op=IROp.LOAD, layer=geo.index, cnt=cnt,
                   vec_width=geo.inputs_per_block)
        )
        nodes["load"] = load

        prev_alu: Optional[IRNode] = None
        for bit in range(spec.bits):
            mvm = dag.add_node(
                IRNode(op=IROp.MVM, layer=geo.index, cnt=cnt, bit=bit,
                       xb_num=geo.crossbars)
            )
            adc = dag.add_node(
                IRNode(op=IROp.ADC, layer=geo.index, cnt=cnt, bit=bit,
                       vec_width=geo.conversions_per_block_bit)
            )
            alu = dag.add_node(
                IRNode(op=IROp.ALU, layer=geo.index, cnt=cnt, bit=bit,
                       aluop="shift_add",
                       vec_width=geo.conversions_per_block_bit)
            )
            nodes[f"mvm{bit}"] = mvm
            nodes[f"adc{bit}"] = adc
            nodes[f"alu{bit}"] = alu

            if bit == 0:
                dag.add_edge(load, mvm)
            else:
                # inter-bit pipeline: the crossbars serialize bit
                # iterations of one block (Fig. 4, inter-bit edges).
                dag.add_edge(nodes[f"mvm{bit - 1}"], mvm)
            dag.add_edge(mvm, adc)
            dag.add_edge(adc, alu)
            if prev_alu is not None:
                # shift-and-add accumulates bit by bit in order.
                dag.add_edge(prev_alu, alu)
            prev_alu = alu

        tail: IRNode = prev_alu  # type: ignore[assignment]

        if n_macros > 1 and geo.row_tiles > 1:
            # Partial sums of a row-tiled layer live on different macros
            # and must be merged before the final outputs exist.
            merge = dag.add_node(
                IRNode(op=IROp.MERGE, layer=geo.index, cnt=cnt,
                       macro_num=n_macros,
                       vec_width=geo.outputs_per_block)
            )
            dag.add_edge(tail, merge)
            nodes["merge"] = merge
            tail = merge

        store = dag.add_node(
            IRNode(op=IROp.STORE, layer=geo.index, cnt=cnt,
                   vec_width=geo.outputs_per_block)
        )
        dag.add_edge(tail, store)
        nodes["store"] = store
        return nodes

    # ------------------------------------------------------------------
    # Intra-layer wiring (inter-block pipeline)
    # ------------------------------------------------------------------
    def _wire_intra_layer(
        self, dag: IRDag, blocks: List[List[Dict[str, IRNode]]]
    ) -> None:
        """Fig. 4 inter-block edges: consecutive blocks share crossbars
        and the scratchpad port, so block ``cnt+1``'s first MVM follows
        block ``cnt``'s last MVM, and loads/stores are chained."""
        last_bit = self.spec.bits - 1
        for layer_blocks in blocks:
            for cnt in range(1, len(layer_blocks)):
                prev, cur = layer_blocks[cnt - 1], layer_blocks[cnt]
                dag.add_edge(prev[f"mvm{last_bit}"], cur["mvm0"])
                dag.add_edge(prev["load"], cur["load"])
                dag.add_edge(prev["store"], cur["store"])

    # ------------------------------------------------------------------
    # Inter-layer wiring (fine-grained pipeline + transfers)
    # ------------------------------------------------------------------
    def producer_block_for(
        self, producer: LayerGeometry, consumer: LayerGeometry,
        consumer_cnt: int,
    ) -> int:
        """Which producer block must finish before consumer block starts.

        The fine-grained pipeline lets a layer start "as soon as the
        previous layer has produced sufficient outputs" (§IV-B). We map
        output positions linearly — consumer block ``cnt`` covers output
        positions up to ``(cnt+1) * WtDup_c``; scaled into the producer's
        output space plus a halo of one kernel row's worth of positions,
        this fixes the producer block index (clamped to its range).

        The paper's own example (Fig. 4: layer 1 ``WtDup=3, WK=3``; store
        of layer-1 block 5 enables load of layer-2 block 3) is reproduced
        by this rule and pinned by a regression test.
        """
        consumed = (consumer_cnt + 1) * consumer.wt_dup
        scale = producer.out_positions / consumer.out_positions
        # Halo: a consumer window spans ~WK producer rows; one row of the
        # producer map is sqrt(out_positions) positions (square maps).
        halo = int(math.sqrt(producer.out_positions))
        needed = min(
            producer.out_positions, math.ceil(consumed * scale) + halo
        )
        block = ceil_div(needed, producer.wt_dup) - 1
        return max(0, min(block, producer.total_blocks - 1))

    def _wire_inter_layer(
        self,
        dag: IRDag,
        blocks: List[List[Dict[str, IRNode]]],
        macro_alloc: Optional[Dict[int, List[int]]],
    ) -> None:
        spec = self.spec
        for producer_idx, consumer_idx in spec.model.interlayer_edges():
            producer = spec.geometries[producer_idx]
            consumer = spec.geometries[consumer_idx]
            prod_blocks = blocks[producer_idx]
            cons_blocks = blocks[consumer_idx]
            for cnt, cons in enumerate(cons_blocks):
                needed = self.producer_block_for(producer, consumer, cnt)
                # Clamp into the window; a dependency beyond the window
                # degrades to the last windowed block, which is
                # conservative for the measured period.
                needed = min(needed, len(prod_blocks) - 1)
                prod_store = prod_blocks[needed]["store"]
                if macro_alloc is not None:
                    src = self._representative_macro(
                        macro_alloc, producer_idx
                    )
                    dst = self._representative_macro(
                        macro_alloc, consumer_idx
                    )
                    if src != dst:
                        # Only the *fresh* slice of the producer's
                        # activation map crosses the NoC per consumer
                        # block; kernel-window overlap (the halo) is
                        # re-read from the consumer macro's eDRAM and
                        # already priced in its load stage. Shipping
                        # inputs_per_block here would re-transfer every
                        # activation ~WK^2 times and overstate comm
                        # traffic by an order of magnitude versus the
                        # evaluator's once-per-activation serialization.
                        fresh = max(1, ceil_div(
                            producer.out_positions * producer.cols,
                            consumer.total_blocks,
                        ))
                        transfer = dag.add_node(
                            IRNode(
                                op=IROp.TRANSFER, layer=producer_idx,
                                cnt=cnt, src=src, dst=dst,
                                dst_layer=consumer_idx,
                                vec_width=fresh,
                            )
                        )
                        dag.add_edge(prod_store, transfer)
                        dag.add_edge(transfer, cons["load"])
                        continue
                dag.add_edge(prod_store, cons["load"])

    @staticmethod
    def _representative_macro(
        macro_alloc: Dict[int, List[int]], layer_index: int
    ) -> int:
        ids = macro_alloc.get(layer_index)
        if not ids:
            raise IRError(
                f"macro allocation missing layer {layer_index}"
            )
        return ids[0]
