"""IR node definitions, mirroring Table II exactly.

=====================  =========================================
Category               IRs (parameters)
=====================  =========================================
Computation            ``MVM(layer, cnt, bit, xb_num)``
                       ``ADC(layer, cnt, bit, vec_width)``
                       ``ALU(aluop, layer, cnt, bit, vec_width)``
Intra-macro comm.      ``load(layer, cnt, vec_width)``
                       ``store(layer, cnt, vec_width)``
Inter-macro comm.      ``merge(layer, macro_num, vec_width)``
                       ``transfer(layer, src, dst, vec_width)``
=====================  =========================================

``cnt`` indexes the computation block, ``bit`` the bit-serial iteration
within a block, ``xb_num`` the crossbars a MVM engages, ``vec_width`` the
operand length. MVM folds DAC and sample-hold in, because "due to the
analog properties, the three operations cannot be divided into different
control steps" (Table II, note a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import IRError


class IROp(enum.Enum):
    """The seven IR opcodes of Table II."""

    MVM = "mvm"
    ADC = "adc"
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    MERGE = "merge"
    TRANSFER = "transfer"


# Vector operations the ALU IR supports (Fig. 2: "shift-and-add, pooling,
# ReLU, etc." — arithmetic/logical/non-linear per Table II).
ALUOP_KINDS: Tuple[str, ...] = (
    "shift_add", "pooling", "relu", "add", "mul", "sigmoid",
)

_COMPUTE_OPS = frozenset({IROp.MVM, IROp.ADC, IROp.ALU})
_COMM_OPS = frozenset({IROp.LOAD, IROp.STORE, IROp.MERGE, IROp.TRANSFER})


@dataclass(frozen=True)
class IRNode:
    """One IR instance — one node of the dataflow DAG.

    Only the fields meaningful for the opcode are set; the constructor
    enforces Table II's parameter lists.
    """

    op: IROp
    layer: int
    cnt: int = 0
    bit: int = 0
    xb_num: int = 0
    vec_width: int = 0
    aluop: Optional[str] = None
    macro_num: int = 0
    src: int = -1
    dst: int = -1
    # Consumer layer of a TRANSFER (src/dst are macro ids, which do not
    # identify a layer once macros are shared). -1 when not applicable.
    dst_layer: int = -1
    node_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.layer < 0:
            raise IRError(f"{self.op}: layer index must be >= 0")
        if self.cnt < 0 or self.bit < 0:
            raise IRError(f"{self.op}: cnt/bit must be >= 0")
        if self.op == IROp.MVM:
            if self.xb_num <= 0:
                raise IRError("MVM: xb_num must be positive")
        elif self.op == IROp.ALU:
            if self.aluop not in ALUOP_KINDS:
                raise IRError(f"ALU: unknown aluop {self.aluop!r}")
            if self.vec_width <= 0:
                raise IRError("ALU: vec_width must be positive")
        elif self.op in (IROp.ADC, IROp.LOAD, IROp.STORE):
            if self.vec_width <= 0:
                raise IRError(f"{self.op.value}: vec_width must be positive")
        elif self.op == IROp.MERGE:
            if self.macro_num < 2:
                raise IRError("merge: needs at least two macros")
            if self.vec_width <= 0:
                raise IRError("merge: vec_width must be positive")
        elif self.op == IROp.TRANSFER:
            if self.src < 0 or self.dst < 0:
                raise IRError("transfer: src/dst must be macro ids >= 0")
            if self.vec_width <= 0:
                raise IRError("transfer: vec_width must be positive")

    @property
    def is_computation(self) -> bool:
        return self.op in _COMPUTE_OPS

    @property
    def is_communication(self) -> bool:
        return self.op in _COMM_OPS

    @property
    def is_inter_macro(self) -> bool:
        return self.op in (IROp.MERGE, IROp.TRANSFER)

    def key(self) -> tuple:
        """Identity tuple (excludes node_id); stable across builds."""
        return (
            self.op, self.layer, self.cnt, self.bit, self.xb_num,
            self.vec_width, self.aluop, self.macro_num, self.src, self.dst,
            self.dst_layer,
        )

    def describe(self) -> str:
        """Compact human-readable form used in traces and lint output."""
        parts = [f"{self.op.value}", f"L{self.layer}", f"cnt={self.cnt}"]
        if self.op in (IROp.MVM, IROp.ADC, IROp.ALU):
            parts.append(f"bit={self.bit}")
        if self.op == IROp.MVM:
            parts.append(f"xb={self.xb_num}")
        if self.op == IROp.ALU:
            parts.append(f"aluop={self.aluop}")
        if self.vec_width:
            parts.append(f"w={self.vec_width}")
        if self.op == IROp.MERGE:
            parts.append(f"macros={self.macro_num}")
        if self.op == IROp.TRANSFER:
            parts.append(f"{self.src}->{self.dst}")
        return " ".join(parts)
