"""DSE archive and Pareto-front analysis.

Alg. 1 keeps only the best design, but the evaluations it pays for
contain more information: the throughput/power/area trade-off surface.
:class:`DesignArchive` plugs into :class:`repro.core.synthesizer.Pimsyn`
as a recording hook, and :func:`pareto_front` extracts the
non-dominated designs — the view an architect wants when the power
constraint is negotiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.optim.dominance import dominates, non_dominated_indices

__all__ = [
    "ArchiveEntry",
    "DesignArchive",
    "dominates",
    "pareto_front",
]


@dataclass(frozen=True)
class ArchiveEntry:
    """One evaluated design's scalar coordinates."""

    ratio_rram: float
    res_rram: int
    xb_size: int
    res_dac: int
    wt_dup: Tuple[int, ...]
    throughput: float
    power: float
    tops_per_watt: float
    latency: float
    num_macros: int


@dataclass
class DesignArchive:
    """Bounded record of evaluated designs (best-first retention)."""

    capacity: int = 256
    entries: List[ArchiveEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("archive capacity must be >= 1")

    def record(self, entry: ArchiveEntry) -> None:
        """Insert an entry; trims to capacity by throughput."""
        self.entries.append(entry)
        if len(self.entries) > 2 * self.capacity:
            self.entries.sort(key=lambda e: -e.throughput)
            del self.entries[self.capacity:]

    def __len__(self) -> int:
        return len(self.entries)

    def best(self) -> ArchiveEntry:
        if not self.entries:
            raise ConfigurationError("archive is empty")
        return max(self.entries, key=lambda e: e.throughput)

    def finalize(self) -> List[ArchiveEntry]:
        """Trim to capacity and return entries, best-first."""
        self.entries.sort(key=lambda e: -e.throughput)
        del self.entries[self.capacity:]
        return list(self.entries)


def pareto_front(
    entries: Sequence[ArchiveEntry],
    objectives: Tuple[Callable[[ArchiveEntry], float], ...] = (
        lambda e: e.throughput,
        lambda e: -e.power,
    ),
) -> List[ArchiveEntry]:
    """Non-dominated subset under the given (maximized) objectives.

    Default objectives: maximize throughput, minimize power — the
    trade-off Eq. 2/Eq. 5 couple through the constraint. Dominance is
    the strict shared definition of :mod:`repro.optim.dominance`:
    equal objective vectors never evict each other (they deduplicate
    below instead).
    """
    if not entries:
        return []
    vectors = [tuple(obj(e) for obj in objectives) for e in entries]
    front = [entries[i] for i in non_dominated_indices(vectors)]
    # Deduplicate identical objective points, keep deterministic order.
    seen = set()
    unique = []
    for entry, vector in zip(front, (
        tuple(obj(e) for obj in objectives) for e in front
    )):
        if vector in seen:
            continue
        seen.add(vector)
        unique.append(entry)
    unique.sort(key=lambda e: -e.throughput)
    return unique
