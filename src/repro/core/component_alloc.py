"""Stage 4 — components allocation (§IV-D, Eq. 5/6).

Peripherals (ADC bank, ALU units) consume most of a PIM accelerator's
power; this stage distributes the peripheral power budget
``(1 - RatioRram) * TotalPower`` across layers and component types so
that the slowest pipeline step is minimized. Eq. 6's closed form makes
every (layer, component) delay equal::

    CompAlloc_l_p = AvailPower * (Wl_l_p / Freq_p)
                    / sum_ic (P_c * Wl_i_c / Freq_c)

so each layer's per-image component time collapses to the single
*balanced delay* ``D = sum_ic(P_c * Wl_i_c / Freq_c) / AvailPower``.

Structural peripherals (per-macro eDRAM/NoC/registers, per-PE DACs and
sample-holds) are charged off the top as *fixed overhead* before the
ADC/ALU split — they scale with the macro partition, which is how the EA
feels the cost of fragmenting a layer across many macros.

Inter-layer macro sharing (rule b) is applied as a post-pass: a shared
pair's two ADC banks become one bank of the larger size (power saving),
the freed power is redistributed over all allocations, and each shared
layer sees the bigger bank — throttled by an overlap penalty when the
layers are close in the pipeline (Fig. 5a's distance effect).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleError
from repro.hardware.crossbar import required_adc_resolution
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.ir.builder import LayerGeometry
from repro.nn.model import CNNModel
from repro.nn.workload import vector_op_workload


@dataclass
class LayerAllocation:
    """Per-layer slice of the peripheral allocation."""

    adc: float  # effective ADC instances serving this layer
    alu: float  # effective ALU instances serving this layer
    adc_resolution: int
    adc_delay: float  # seconds per image spent on conversions
    alu_delay: float  # seconds per image spent on vector ops
    shared_with: Optional[int] = None  # partner layer index, if sharing


@dataclass
class ComponentAllocation:
    """Stage-4 output: allocations, delays, and the power account."""

    layers: List[LayerAllocation]
    fixed_power: float  # eDRAM/NoC/registers/DACs/S&H
    adc_alu_power: float  # power spent on ADC banks + ALU lanes
    balanced_delay: float  # Eq. 6's equalized per-image delay D
    sharing_savings: float  # watts recovered by inter-layer ADC reuse

    @property
    def total_peripheral_power(self) -> float:
        return self.fixed_power + self.adc_alu_power

    def per_macro_counts(
        self, macro_groups: Sequence[Sequence[int]]
    ) -> List[Tuple[int, int]]:
        """Integer (ADCs, ALUs) per macro for each layer's macros."""
        counts = []
        for allocation, group in zip(self.layers, macro_groups):
            n_macros = max(1, len(group))
            adcs = max(1, round(allocation.adc / n_macros))
            alus = max(1, round(allocation.alu / n_macros))
            counts.append((adcs, alus))
        return counts


def layer_workloads(
    geometries: Sequence[LayerGeometry],
    model: CNNModel,
    bits: int,
) -> Tuple[List[float], List[float]]:
    """Per-image ADC conversions and ALU element-ops per layer (Eq. 5 Wl)."""
    adc_wl: List[float] = []
    alu_wl: List[float] = []
    layers = model.weighted_layers
    for geo in geometries:
        conversions = (
            geo.total_blocks * bits * geo.conversions_per_block_bit
        )
        adc_wl.append(float(conversions))
        vector_ops = vector_op_workload(model, layers[geo.index].name)
        alu_wl.append(float(conversions) + float(vector_ops))
    return adc_wl, alu_wl


def fixed_overhead_power(
    geometries: Sequence[LayerGeometry],
    macro_groups: Sequence[Sequence[int]],
    params: HardwareParams,
    xb_size: int,
    res_dac: int,
) -> float:
    """Power of the structure-bound peripherals."""
    total_macros = len(
        {mid for group in macro_groups for mid in group}
    )
    total_crossbars = sum(geo.crossbars for geo in geometries)
    per_macro = (
        params.edram_power + params.noc_power
        + params.register_power_per_macro
    )
    per_crossbar = xb_size * (
        params.dac_power_of(res_dac) + params.sample_hold_power
    )
    return total_macros * per_macro + total_crossbars * per_crossbar


def allocate_components(
    geometries: Sequence[LayerGeometry],
    macro_groups: Sequence[Sequence[int]],
    budget: PowerBudget,
    params: HardwareParams,
    res_dac: int,
    model: CNNModel,
    sharing_pairs: Sequence[Tuple[int, int]] = (),
    identical_macros: bool = False,
    overlap_window: int = 4,
) -> ComponentAllocation:
    """Solve Eq. 5 via the Eq. 6 closed form (plus sharing post-pass).

    Parameters
    ----------
    geometries:
        Stage-2 layer geometries (carry WtDup, set sizes, block counts).
    macro_groups:
        Stage-3 partition: macro ids per layer.
    sharing_pairs:
        ``(j, i)`` with ``j < i``: layer pairs reusing one macro set.
    identical_macros:
        Provision every macro with the chip-wide maximum per-macro bank
        (the §V-C2 "identical" design); costs power, never performance.
    overlap_window:
        Layers closer than this contend for the shared ADC bank
        (Fig. 5a); the penalty decays linearly with distance.

    Raises
    ------
    InfeasibleError
        When fixed overhead alone exceeds the peripheral budget.
    """
    bits = params.act_bit_iterations(res_dac)
    adc_wl, alu_wl = layer_workloads(geometries, model, bits)

    xb_size = budget.xb_size
    adc_lo, adc_hi = params.adc_resolution_range
    adc_resolutions = [
        required_adc_resolution(
            min(xb_size, geo.rows), budget.res_rram, res_dac,
            min_resolution=adc_lo, max_resolution=adc_hi,
        )
        for geo in geometries
    ]

    fixed = fixed_overhead_power(
        geometries, macro_groups, params, xb_size, res_dac
    )
    available = budget.peripheral_power - fixed
    if available <= 0:
        raise InfeasibleError(
            f"fixed peripheral overhead {fixed:.3f}W exceeds the "
            f"peripheral budget {budget.peripheral_power:.3f}W"
        )

    adc_rate = params.adc_sample_rate
    alu_rate = params.alu_frequency
    adc_powers = [params.adc_power_of(r) for r in adc_resolutions]

    if identical_macros:
        return _allocate_identical(
            geometries, macro_groups, adc_wl, alu_wl, adc_resolutions,
            params, fixed, available,
        )

    # Eq. 6 denominator: sum over layers and components of P*Wl/F.
    denom = sum(
        p * wl / adc_rate for p, wl in zip(adc_powers, adc_wl)
    ) + sum(params.alu_power * wl / alu_rate for wl in alu_wl)
    if denom <= 0:
        raise InfeasibleError("no peripheral workload to allocate for")

    balanced_delay = denom / available
    adc_alloc = [
        wl / (adc_rate * balanced_delay) for wl in adc_wl
    ]
    alu_alloc = [
        wl / (alu_rate * balanced_delay) for wl in alu_wl
    ]

    # ------------------------------------------------------------------
    # Sharing post-pass: merge paired ADC banks, redistribute the savings.
    # A merged bank runs at the pair's max resolution, so merging a large
    # cheap-resolution bank with a tiny expensive one can *cost* power —
    # such pairs are skipped (the hardware simply would not share them).
    # ------------------------------------------------------------------
    savings = 0.0
    shared_of: Dict[int, int] = {}
    for j, i in sharing_pairs:
        bank = max(adc_alloc[j], adc_alloc[i])
        bank_power_unit = max(adc_powers[j], adc_powers[i])
        separate = adc_powers[j] * adc_alloc[j] + adc_powers[i] * adc_alloc[i]
        merged = bank_power_unit * bank
        if merged >= separate:
            continue
        savings += separate - merged
        shared_of[j] = i
        shared_of[i] = j

    scale = 1.0
    if savings > 0 and savings < available:
        scale = available / (available - savings)

    layers: List[LayerAllocation] = []
    for idx, geo in enumerate(geometries):
        partner = shared_of.get(idx)
        if partner is not None:
            bank = max(adc_alloc[idx], adc_alloc[partner]) * scale
            distance = abs(idx - partner)
            overlap = max(0.0, 1.0 - distance / max(1, overlap_window))
            effective_adc = bank / (1.0 + overlap)
        else:
            effective_adc = adc_alloc[idx] * scale
        effective_alu = alu_alloc[idx] * scale
        layers.append(
            LayerAllocation(
                adc=effective_adc,
                alu=effective_alu,
                adc_resolution=adc_resolutions[idx],
                adc_delay=adc_wl[idx] / (adc_rate * effective_adc),
                alu_delay=alu_wl[idx] / (alu_rate * effective_alu),
                shared_with=partner,
            )
        )

    # Power actually drawn by ADC banks (shared pairs counted once) + ALUs.
    adc_power_used = 0.0
    counted = set()
    for idx in range(len(geometries)):
        partner = shared_of.get(idx)
        if partner is not None:
            key = (min(idx, partner), max(idx, partner))
            if key in counted:
                continue
            counted.add(key)
            bank = max(adc_alloc[idx], adc_alloc[partner]) * scale
            adc_power_used += max(adc_powers[idx], adc_powers[partner]) * bank
        else:
            adc_power_used += adc_powers[idx] * adc_alloc[idx] * scale
    alu_power_used = sum(
        params.alu_power * a * scale for a in alu_alloc
    )

    return ComponentAllocation(
        layers=layers,
        fixed_power=fixed,
        adc_alu_power=adc_power_used + alu_power_used,
        balanced_delay=balanced_delay / scale,
        sharing_savings=savings,
    )


def _allocate_identical(
    geometries: Sequence[LayerGeometry],
    macro_groups: Sequence[Sequence[int]],
    adc_wl: List[float],
    alu_wl: List[float],
    adc_resolutions: List[int],
    params: HardwareParams,
    fixed: float,
    available: float,
) -> ComponentAllocation:
    """Identical-macro variant (§V-C2 baseline).

    Every macro carries the same ADC bank and ALU count, sized so the
    *bottleneck* layer (largest per-macro workload) meets the power
    budget; other layers' banks are overprovisioned copies, so power is
    wasted relative to the specialized design, which is exactly the
    effect Fig. 8 measures.
    """
    total_macros = len({m for group in macro_groups for m in group})
    macro_count = [max(1, len(g)) for g in macro_groups]

    # Identical macros must carry the worst-case ADC resolution.
    max_resolution = max(adc_resolutions)
    adc_power_unit = params.adc_power_of(max_resolution)
    adc_rate = params.adc_sample_rate
    alu_rate = params.alu_frequency

    # The per-macro demand rates that size the uniform banks.
    max_adc_rate_demand = max(
        wl / m for wl, m in zip(adc_wl, macro_count)
    )
    max_alu_rate_demand = max(
        wl / m for wl, m in zip(alu_wl, macro_count)
    )

    adc_share_weight = adc_power_unit * max_adc_rate_demand / adc_rate
    alu_share_weight = params.alu_power * max_alu_rate_demand / alu_rate
    weight_sum = adc_share_weight + alu_share_weight
    if weight_sum <= 0:
        raise InfeasibleError("no peripheral workload to allocate for")

    adc_power_total = available * adc_share_weight / weight_sum
    alu_power_total = available * alu_share_weight / weight_sum
    per_macro_adc = adc_power_total / (total_macros * adc_power_unit)
    per_macro_alu = alu_power_total / (total_macros * params.alu_power)
    if per_macro_adc <= 0 or per_macro_alu <= 0:
        raise InfeasibleError("identical-macro budget collapsed to zero")

    layers = []
    for idx, _geo in enumerate(geometries):
        bank = per_macro_adc * macro_count[idx]
        lanes = per_macro_alu * macro_count[idx]
        layers.append(
            LayerAllocation(
                adc=bank,
                alu=lanes,
                adc_resolution=max_resolution,
                adc_delay=adc_wl[idx] / (adc_rate * bank),
                alu_delay=alu_wl[idx] / (alu_rate * lanes),
                shared_with=None,
            )
        )
    return ComponentAllocation(
        layers=layers,
        fixed_power=fixed,
        adc_alu_power=adc_power_total + alu_power_total,
        balanced_delay=max(
            max(l.adc_delay for l in layers),
            max(l.alu_delay for l in layers),
        ),
        sharing_savings=0.0,
    )
