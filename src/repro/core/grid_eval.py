"""Tensorized evaluation of the outer DSE task grid.

PR 3 flattened the EA's *inner* loop into ``(population, layers)``
arrays (:mod:`repro.core.batch_eval`); this module applies the same move
to the *outer* (design point x WtDup x ResDAC) task walk. Before any EA
launches, the executor needs every task's analytical throughput upper
bound (:func:`repro.core.evaluator.throughput_upper_bound`) to order the
queue and prune dominated tasks — per task, the scalar path rebuilds a
full :class:`~repro.ir.builder.DataflowSpec` (re-materializing every
layer's crossbar tiling) just to read a handful of per-layer integers.
Profiling shows that listcomp dominating cold synthesis now that the EA
itself is batched.

:class:`GridBoundEvaluator` instead assembles one ``(tasks, layers)``
:class:`~repro.core.backend.TaskGrid` and hands it to the configured
:class:`~repro.core.backend.ArrayBackend`:

- the crossbar tiling (``set``, row tiles, bit slices) depends only on
  ``(layer, XbSize, ResRram)`` — never on WtDup or ResDAC — so it is
  materialized once per outer combo and broadcast over every task that
  shares it, instead of once per task;
- the per-layer ADC resolution/power and the per-crossbar DAC/S&H fixed
  cost depend only on ``(XbSize, ResRram, ResDAC)`` and are likewise
  cached per combo, computed through the *real* scalar functions
  (:func:`repro.hardware.crossbar.required_adc_resolution`,
  ``HardwareParams.adc_power_of`` / ``dac_power_of``) so a component-
  model change propagates into the grid path automatically;
- everything WtDup-dependent (block counts, per-block operands, rule-c
  group caps, Eq. 5 conversion workloads) is exact int64 arithmetic on
  the assembled arrays.

Exactness contract
------------------
Identical to :mod:`repro.core.batch_eval`'s: the backend kernels
replicate the scalar oracle's IEEE-754 float64 operation order (ordered
layer-axis reductions, left-associated products, exact integer
intermediates), so ``bounds(tasks)[i]`` is bit-identical — ``==``, not
merely close — to ``_TaskRunner.throughput_bound(tasks[i])`` for every
task and every registered backend. ``tests/test_grid_eval_differential``
pins this across the model zoo; the executor's pruning decisions (exact
float comparisons against the incumbent) therefore cannot differ
between the tensorized and the per-task walk.

The module degrades gracefully: :func:`grid_eval_supported` is False
when numpy is unavailable, and the executor falls back to the scalar
per-task walk (same solutions, slower), exactly like ``batch_eval``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.backend import (
    ArrayBackend,
    TaskGrid,
    get_backend,
    numpy_module,
)
from repro.core.config import SynthesisConfig
from repro.hardware.crossbar import (
    crossbar_tiling_summary,
    required_adc_resolution,
)
from repro.nn.model import CNNModel
from repro.nn.workload import vector_op_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import EvaluationTask


def grid_eval_supported() -> bool:
    """Whether the tensorized task walk can run on this interpreter.

    Grid assembly builds numpy arrays regardless of the backend that
    consumes them, so numpy is the gate (the ``python`` backend still
    *executes* without vector instructions, but reads the same arrays).
    """
    return numpy_module() is not None


class GridBoundEvaluator:
    """Computes pruning bounds for whole task queues in one pass.

    One instance serves one ``(model, config)`` pair — the same pairing
    a :class:`~repro.core.executor._TaskRunner` owns — and caches every
    task-independent quantity across calls, so re-bounding a queue
    (e.g. phase 1 and phase 2 of pareto mode) only pays for the
    WtDup-dependent arrays.
    """

    def __init__(
        self,
        model: CNNModel,
        config: SynthesisConfig,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        np = numpy_module()
        if np is None:
            raise RuntimeError(
                "grid evaluation requires numpy; gate on "
                "grid_eval_supported() before constructing"
            )
        self.model = model
        self.config = config
        self.params = config.params
        self.backend = (
            backend if backend is not None
            else get_backend(config.backend)
        )
        layers = model.weighted_layers
        self._num_layers = len(layers)
        # Static per-layer geometry (mirrors DataflowSpec.__post_init__).
        rows: List[int] = []
        cols: List[int] = []
        out_positions: List[int] = []
        vector_ops: List[float] = []
        for layer in layers:
            assert layer.output_shape is not None
            _, ho, wo = layer.output_shape
            n_cols = getattr(layer, "out_channels", None)
            if n_cols is None:
                n_cols = layer.out_features  # type: ignore[attr-defined]
            rows.append(layer.weight_rows)  # type: ignore[attr-defined]
            cols.append(n_cols)
            out_positions.append(ho * wo)
            vector_ops.append(float(vector_op_workload(model, layer.name)))
        self._rows = np.asarray(rows, dtype=np.int64)
        self._cols = np.asarray(cols, dtype=np.int64)
        self._out_positions = np.asarray(out_positions, dtype=np.int64)
        self._vector_ops = np.asarray(vector_ops, dtype=np.float64)
        # Scalar constants, in the scalar code's own expressions.
        self._act_bytes = model.act_precision / 8.0
        self._per_macro_fixed = (
            self.params.edram_power + self.params.noc_power
            + self.params.register_power_per_macro
        )
        n_layers = self._num_layers
        self._min_macros = (
            -(-n_layers // 2) if config.enable_macro_sharing else n_layers
        )
        # Per-combo caches (the whole point of the grid walk: tilings
        # and ADC tables are shared by every task of a combo).
        self._tilings: Dict[Tuple[int, int], Tuple] = {}
        self._adc_power: Dict[Tuple[int, int, int], "object"] = {}
        self._per_crossbar: Dict[Tuple[int, int], float] = {}
        self._bits: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Per-combo quantities
    # ------------------------------------------------------------------
    def _tiling(self, xb_size: int, res_rram: int):
        """(set_size, row_tiles, bit_slices) arrays for one combo."""
        key = (xb_size, res_rram)
        cached = self._tilings.get(key)
        if cached is None:
            np = numpy_module()
            sets: List[int] = []
            row_tiles: List[int] = []
            bit_slices: List[int] = []
            for layer in self.model.weighted_layers:
                tiling = crossbar_tiling_summary(
                    layer, xb_size, res_rram,
                    self.model.weight_precision,
                )
                sets.append(tiling.num_crossbars)
                row_tiles.append(tiling.row_tiles)
                bit_slices.append(tiling.bit_slices)
            cached = (
                np.asarray(sets, dtype=np.int64),
                np.asarray(row_tiles, dtype=np.int64),
                np.asarray(bit_slices, dtype=np.int64),
            )
            self._tilings[key] = cached
        return cached

    def _adc_power_row(
        self, xb_size: int, res_rram: int, res_dac: int
    ):
        """Per-layer ADC power at the lossless-readout resolution."""
        key = (xb_size, res_rram, res_dac)
        cached = self._adc_power.get(key)
        if cached is None:
            np = numpy_module()
            adc_lo, adc_hi = self.params.adc_resolution_range
            cached = np.asarray([
                self.params.adc_power_of(
                    required_adc_resolution(
                        min(xb_size, int(n_rows)), res_rram, res_dac,
                        min_resolution=adc_lo, max_resolution=adc_hi,
                    )
                )
                for n_rows in self._rows
            ], dtype=np.float64)
            self._adc_power[key] = cached
        return cached

    def _per_crossbar_fixed(self, xb_size: int, res_dac: int) -> float:
        """DAC + sample-hold power of one crossbar (fixed overhead)."""
        key = (xb_size, res_dac)
        cached = self._per_crossbar.get(key)
        if cached is None:
            cached = xb_size * (
                self.params.dac_power_of(res_dac)
                + self.params.sample_hold_power
            )
            self._per_crossbar[key] = cached
        return cached

    def _bits_of(self, res_dac: int) -> int:
        """ceil(PrecAct / ResDAC) — DataflowSpec.bits."""
        cached = self._bits.get(res_dac)
        if cached is None:
            cached = -(-self.model.act_precision // res_dac)
            self._bits[res_dac] = cached
        return cached

    # ------------------------------------------------------------------
    # Grid assembly + evaluation
    # ------------------------------------------------------------------
    def build_grid(self, tasks: Sequence["EvaluationTask"]) -> TaskGrid:
        """Assemble the ``(tasks, layers)`` arrays for one queue."""
        np = numpy_module()
        n_tasks = len(tasks)
        n_layers = self._num_layers
        wt_dup = np.empty((n_tasks, n_layers), dtype=np.int64)
        set_size = np.empty((n_tasks, n_layers), dtype=np.int64)
        row_tiles = np.empty((n_tasks, n_layers), dtype=np.int64)
        bit_slices = np.empty((n_tasks, n_layers), dtype=np.int64)
        adc_power = np.empty((n_tasks, n_layers), dtype=np.float64)
        bits = np.empty(n_tasks, dtype=np.int64)
        per_crossbar = np.empty(n_tasks, dtype=np.float64)
        peripheral = np.empty(n_tasks, dtype=np.float64)
        total_power = self.config.total_power
        for t, task in enumerate(tasks):
            point = task.point
            sets, tiles, slices = self._tiling(
                point.xb_size, point.res_rram
            )
            wt_dup[t] = task.wt_dup
            set_size[t] = sets
            row_tiles[t] = tiles
            bit_slices[t] = slices
            adc_power[t] = self._adc_power_row(
                point.xb_size, point.res_rram, task.res_dac
            )
            bits[t] = self._bits_of(task.res_dac)
            per_crossbar[t] = self._per_crossbar_fixed(
                point.xb_size, task.res_dac
            )
            # PowerBudget.peripheral_power, verbatim.
            peripheral[t] = total_power * (1.0 - point.ratio_rram)

        # WtDup-dependent geometry (LayerGeometry properties, exact
        # int64 — every product stays far below 2**63, and int -> float
        # conversions round identically to Python's).
        total_blocks = -(-self._out_positions[None, :] // wt_dup)
        inputs_per_block = wt_dup * self._rows[None, :]
        outputs_per_block = wt_dup * self._cols[None, :]
        crossbars = wt_dup * set_size
        conversions_per_block_bit = (
            wt_dup * row_tiles * bit_slices * self._cols[None, :]
        )
        group_cap = np.minimum(wt_dup * row_tiles, crossbars)

        return TaskGrid(
            total_blocks=total_blocks,
            inputs_per_block=inputs_per_block,
            outputs_per_block=outputs_per_block,
            group_cap=group_cap,
            crossbars=crossbars,
            conversions_per_block_bit=conversions_per_block_bit,
            bits=bits,
            adc_power=adc_power,
            vector_ops=self._vector_ops,
            per_crossbar_fixed=per_crossbar,
            peripheral_power=peripheral,
            crossbar_latency=self.params.crossbar_latency,
            act_bytes=self._act_bytes,
            edram_bandwidth=self.params.edram_bandwidth,
            per_macro_fixed=self._per_macro_fixed,
            adc_sample_rate=self.params.adc_sample_rate,
            alu_power=self.params.alu_power,
            alu_frequency=self.params.alu_frequency,
            min_macros=self._min_macros,
            macro_sharing=self.config.enable_macro_sharing,
        )

    def bounds_array(self, tasks: Sequence["EvaluationTask"]):
        """Per-task bounds as a float64 array (backend-computed)."""
        np = numpy_module()
        if not tasks:
            return np.zeros(0, dtype=np.float64)
        return self.backend.compute_bounds(self.build_grid(tasks))

    def bounds(self, tasks: Sequence["EvaluationTask"]) -> List[float]:
        """Per-task bounds as Python floats (positionally aligned).

        Bit-identical to ``[_TaskRunner.throughput_bound(t) for t in
        tasks]`` — the differential suite's core claim.
        """
        return [float(value) for value in self.bounds_array(tasks)]
