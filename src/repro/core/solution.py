"""Synthesis solution objects: the finished accelerator + its dataflow.

A :class:`SynthesisSolution` bundles everything Alg. 1's winner needs to
be used downstream: the design-point variables, the weight-duplication
vector, the macro partition, the component allocation, the evaluation
metrics, and constructors for the concrete :class:`Accelerator` and the
full IR DAG. It serializes to JSON so synthesized designs can be saved
and reloaded without re-running the DSE.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.component_alloc import ComponentAllocation
from repro.core.evaluator import EvaluationResult, PerformanceEvaluator
from repro.core.macro_partition import MacroPartition
from repro.hardware.chip import Accelerator
from repro.hardware.macro import MacroConfig, PEConfig
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.ir.builder import DataflowSpec
from repro.ir.dag import IRDag
from repro.nn.model import CNNModel
from repro.utils.mathutils import ceil_div


@dataclass
class SynthesisSolution:
    """One complete synthesized accelerator design."""

    model_name: str
    total_power: float
    ratio_rram: float
    res_rram: int
    xb_size: int
    res_dac: int
    wt_dup: Tuple[int, ...]
    partition: MacroPartition
    allocation: ComponentAllocation
    evaluation: EvaluationResult
    spec: DataflowSpec = field(repr=False)
    budget: PowerBudget = field(repr=False)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build_accelerator(self) -> Accelerator:
        """Construct the concrete chip: macros with integer components."""
        spec = self.spec
        groups = self.partition.macro_groups
        counts = self.allocation.per_macro_counts(groups)

        # Gather per-macro facts (a macro may host two layers via sharing).
        layers_of_macro: Dict[int, List[int]] = {}
        pes_of_macro: Dict[int, int] = {}
        adcs_of_macro: Dict[int, int] = {}
        alus_of_macro: Dict[int, int] = {}
        res_of_macro: Dict[int, int] = {}
        for geo, group, (adcs, alus) in zip(
            spec.geometries, groups, counts
        ):
            per_macro_pes = ceil_div(geo.crossbars, len(group))
            layer_alloc = self.allocation.layers[geo.index]
            for mid in group:
                layers_of_macro.setdefault(mid, []).append(geo.index)
                pes_of_macro[mid] = pes_of_macro.get(mid, 0) + per_macro_pes
                # Shared macros carry one bank sized for the larger user.
                adcs_of_macro[mid] = max(
                    adcs_of_macro.get(mid, 0), adcs
                )
                alus_of_macro[mid] = max(
                    alus_of_macro.get(mid, 0), alus
                )
                res_of_macro[mid] = max(
                    res_of_macro.get(mid, 0), layer_alloc.adc_resolution
                )

        pe = PEConfig(
            xb_size=self.xb_size, res_rram=self.res_rram,
            res_dac=self.res_dac,
        )
        macros = [
            MacroConfig(
                macro_id=mid,
                pe=pe,
                num_pes=pes_of_macro[mid],
                num_adcs=adcs_of_macro[mid],
                adc_resolution=res_of_macro[mid],
                num_alus=alus_of_macro[mid],
                layer_indices=tuple(sorted(set(layers_of_macro[mid]))),
            )
            for mid in range(self.partition.num_macros)
        ]
        layer_macros = {
            geo.index: list(groups[geo.index]) for geo in spec.geometries
        }
        return Accelerator(
            macros=macros, params=spec.params, layer_macros=layer_macros
        )

    def build_dag(self) -> IRDag:
        """Compile the solution's full IR DAG (with communication IRs)."""
        from repro.core.dataflow import compile_dataflow

        macro_alloc = {
            geo.index: list(self.partition.macro_groups[geo.index])
            for geo in self.spec.geometries
        }
        return compile_dataflow(self.spec, macro_alloc=macro_alloc)

    def peak_metrics(self) -> Tuple[float, float]:
        """(peak TOPS, peak TOPS/W) of this design (Table IV metric)."""
        evaluator = PerformanceEvaluator(self.spec, self.budget)
        return evaluator.peak_metrics(self.allocation)

    # ------------------------------------------------------------------
    # Simulation replay hooks (lazy imports keep sim/ out of the DSE
    # hot path)
    # ------------------------------------------------------------------
    def simulation_engine(self):
        """The windowed behavior-level list scheduler for this design."""
        from repro.sim.engine import SimulationEngine

        return SimulationEngine(
            spec=self.spec,
            allocation=self.allocation,
            macro_groups=self.partition.macro_groups,
        )

    def cycle_simulator(self, **kwargs):
        """The integer-cycle pipelined simulator for this design.

        Keyword arguments (``fault_rate``, ``fault_seed``,
        ``cycle_time``, ``resolution``, ``engine``) forward to
        :class:`repro.sim.cycle.CycleSimulator`. Simulators of the
        same solution share one lowering cache, so fault sweeps and
        engine comparisons lower once and replay many.
        """
        from repro.sim.cycle import CycleSimulator

        return CycleSimulator.for_solution(self, **kwargs)

    def cross_validate(self, tol: Optional[float] = None, **kwargs):
        """Replay this design cycle-accurately and compare both models.

        Returns a :class:`repro.sim.cycle.CrossValidationReport`; call
        ``.ensure()`` on it to raise when the deviation exceeds ``tol``.
        """
        from repro.sim.cycle import DEFAULT_TOLERANCE, cross_validate

        return cross_validate(
            self,
            tol=DEFAULT_TOLERANCE if tol is None else tol,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Reporting / serialization
    # ------------------------------------------------------------------
    def summary(self) -> str:
        ev = self.evaluation
        lines = [
            f"solution for {self.model_name} @ {self.total_power:.1f} W",
            f"  design point: RatioRram={self.ratio_rram} "
            f"ResRram={self.res_rram} XbSize={self.xb_size} "
            f"ResDAC={self.res_dac}",
            f"  WtDup: {list(self.wt_dup)}",
            f"  macros: {self.partition.num_macros} "
            f"(sharing pairs: {list(self.partition.sharing_pairs)})",
            f"  throughput: {ev.throughput:.1f} img/s  "
            f"({ev.tops:.2f} TOPS)",
            f"  power: {ev.power:.2f} W  efficiency: "
            f"{ev.tops_per_watt:.3f} TOPS/W",
            f"  latency: {ev.latency * 1e3:.3f} ms  energy/img: "
            f"{ev.energy_per_image * 1e3:.3f} mJ",
        ]
        return "\n".join(lines)

    def to_payload(self) -> Dict:
        """The JSON-ready artifact dict (decisions + metrics, no model).

        This is the unit of currency of :mod:`repro.core.persistence`
        and the serve-layer result store; :meth:`to_json` is its
        serialized form.
        """
        ev = self.evaluation
        payload = {
            "model": self.model_name,
            "total_power": self.total_power,
            "design_point": {
                "ratio_rram": self.ratio_rram,
                "res_rram": self.res_rram,
                "xb_size": self.xb_size,
                "res_dac": self.res_dac,
            },
            "wt_dup": list(self.wt_dup),
            "gene": list(self.partition.gene),
            "num_macros": self.partition.num_macros,
            "sharing_pairs": [
                list(p) for p in self.partition.sharing_pairs
            ],
            "metrics": {
                "throughput_img_s": ev.throughput,
                "tops": ev.tops,
                "power_w": ev.power,
                "tops_per_watt": ev.tops_per_watt,
                "latency_s": ev.latency,
                "energy_per_image_j": ev.energy_per_image,
                "edp_js": ev.edp,
            },
        }
        return payload

    def to_json(self, indent: int = 2) -> str:
        """Serialize the decision variables and metrics (not the model)."""
        return json.dumps(self.to_payload(), indent=indent)

    @staticmethod
    def metrics_from_json(document: str) -> Dict:
        """Parse a serialized solution's metric payload."""
        return json.loads(document)
