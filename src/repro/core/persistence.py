"""Save and reload synthesis solutions.

``SynthesisSolution.to_json`` serializes the *decision variables* (the
design point, WtDup vector and MacAlloc gene) plus the metrics; this
module closes the loop: :func:`load_solution` reconstructs a live
solution from that JSON plus the model, by re-running the deterministic
tail of the flow (dataflow spec, components allocation, evaluation) —
no DSE. This is how a synthesized design ships: a small JSON artifact
that any holder of the model can re-materialize and simulate — the
practical complement to §I's "one-click" pitch, since the four-hour
Alg. 1 search (§V) runs once and its winner replays in milliseconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.component_alloc import allocate_components
from repro.core.dataflow import make_spec
from repro.core.evaluator import PerformanceEvaluator
from repro.core.macro_partition import MacroPartition
from repro.core.solution import SynthesisSolution
from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.hardware.tech import DEFAULT_TECHNOLOGY
from repro.nn.model import CNNModel


def save_solution(
    solution: SynthesisSolution, path: Union[str, Path]
) -> None:
    """Write the solution's JSON artifact."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(solution.to_json())


def load_solution(
    path: Union[str, Path],
    model: CNNModel,
    params: HardwareParams = None,
    max_blocks_per_layer: int = 8,
    tech: str = DEFAULT_TECHNOLOGY,
) -> SynthesisSolution:
    """Re-materialize a solution from its JSON artifact and the model.

    The artifact stores decisions, not the model; the caller supplies
    the same CNN the design was synthesized for — and, for designs
    synthesized under a non-default technology, the same device, via
    ``tech`` (or an explicit ``params``). A model/artifact mismatch
    (wrong layer count) raises :class:`ConfigurationError`. Metrics
    are *recomputed*, which doubles as an integrity check — the loader
    verifies the stored throughput against the re-evaluation, so a
    wrong-technology reload is caught rather than silently mispriced.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.loads(handle.read())
    return solution_from_payload(
        payload, model, params=params,
        max_blocks_per_layer=max_blocks_per_layer, tech=tech,
    )


def solution_from_payload(
    payload: dict,
    model: CNNModel,
    params: HardwareParams = None,
    max_blocks_per_layer: int = 8,
    tech: str = DEFAULT_TECHNOLOGY,
) -> SynthesisSolution:
    """The dict-level half of :func:`load_solution`.

    This is the hook the serve-layer result store uses: stored results
    embed the artifact payload (``SynthesisSolution.to_payload``), and
    a client holding the model re-materializes the live solution from
    it — re-running only the deterministic tail of the flow, never the
    DSE. ``params`` (explicit constants) or ``tech`` (a registered
    profile name) selects the device the artifact was synthesized
    under.
    """
    hw = (
        params if params is not None
        else HardwareParams.from_technology(tech)
    )
    expected_model = payload["model"]
    if model.name not in (expected_model, expected_model.split("@")[0]):
        raise ConfigurationError(
            f"artifact was synthesized for {expected_model!r}, "
            f"got model {model.name!r}"
        )
    wt_dup = payload["wt_dup"]
    if len(wt_dup) != model.num_weighted_layers:
        raise ConfigurationError(
            f"artifact has {len(wt_dup)} WtDup entries; model has "
            f"{model.num_weighted_layers} weighted layers"
        )

    point = payload["design_point"]
    budget = PowerBudget.from_constraint(
        payload["total_power"], point["ratio_rram"], point["xb_size"],
        point["res_rram"], hw,
    )
    spec = make_spec(
        model, wt_dup,
        xb_size=point["xb_size"],
        res_rram=point["res_rram"],
        res_dac=point["res_dac"],
        params=hw,
        max_blocks_per_layer=max_blocks_per_layer,
    )
    partition = MacroPartition.from_gene(tuple(payload["gene"]))
    allocation = allocate_components(
        spec.geometries, partition.macro_groups, budget, hw,
        point["res_dac"], model,
        sharing_pairs=partition.sharing_pairs,
    )
    evaluation = PerformanceEvaluator(spec, budget).evaluate(
        partition.macro_groups, allocation
    )

    stored = payload["metrics"]["throughput_img_s"]
    if stored > 0 and abs(evaluation.throughput - stored) > 0.05 * stored:
        raise ConfigurationError(
            f"re-evaluated throughput {evaluation.throughput:.1f} "
            f"deviates >5% from the stored {stored:.1f} - artifact, "
            "model, or hardware parameters do not match"
        )

    return SynthesisSolution(
        model_name=payload["model"],
        total_power=payload["total_power"],
        ratio_rram=point["ratio_rram"],
        res_rram=point["res_rram"],
        xb_size=point["xb_size"],
        res_dac=point["res_dac"],
        wt_dup=tuple(wt_dup),
        partition=partition,
        allocation=allocation,
        evaluation=evaluation,
        spec=spec,
        budget=budget,
    )
