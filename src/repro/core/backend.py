"""Pluggable array-execution backends for the tensorized DSE paths.

PR 3 vectorized the inner EA population scoring with numpy; the grid
evaluator of :mod:`repro.core.grid_eval` applies the same
flatten-to-tensor move to the *outer* (design point x WtDup x ResDAC)
task walk; and :mod:`repro.core.batch_eval` routes the hottest kernel
in the system — the ``(population, layers)`` EA scoring — through the
same seam. All of these paths are pure array arithmetic, so the
concrete array engine is an execution detail — exactly like the device
technology is a content detail — and this module gives it the same
shape as :mod:`repro.hardware.tech`: a named, validated registry of
:class:`ArrayBackend` objects, selected by ``SynthesisConfig.backend``
(``--backend`` on the CLI).

Five backends ship built in:

``numpy``
    The default: vectorized ``(tasks, layers)`` / ``(population,
    layers)`` operations, layer reductions accumulated in layer order
    so every value is bit-identical to the scalar oracle.
``python``
    Scalar loops over the same arrays, in exactly the scalar oracle's
    operation order — the conformance reference every other backend
    (including third-party registrations) is compared against. When
    numpy itself is absent the executor skips grid evaluation entirely
    and walks tasks one at a time, as before PR 6.
``numba``
    The ``python`` loop kernels (:func:`_bound_loops` and the fused
    :func:`_score_loops` population kernel) JIT-compiled with
    ``numba.njit`` (``fastmath`` off, so IEEE-754 evaluation order —
    and therefore bit-identity — is preserved). Registered
    unconditionally but only *available* when numba is importable;
    selecting it without numba installed raises a
    :class:`~repro.errors.ConfigurationError` naming the missing
    dependency.
``cupy``
    The vectorized engine running on CUDA through cupy's numpy-drop-in
    API. Registered unconditionally (like a device technology);
    *available* only when cupy imports and a CUDA device is present.
``torch``
    The vectorized engine on torch tensors — CUDA when
    ``torch.cuda.is_available()``, CPU tensors otherwise. Registered
    unconditionally; available whenever torch imports.

Exactness contract
------------------
Exact backends (``numpy``, ``python``, ``numba`` — ``exact = True``)
must return bit-identical results for the op-level primitives
(``ordered_sum``, ``ordered_max``, ``prune_mask``, and the integer
``decode_population`` / ``mesh_hops``) and the fused kernels
(:meth:`ArrayBackend.compute_bounds`,
:meth:`ArrayBackend.score_population`) — *not* merely close: the DSE
pruning decisions and EA tournaments ride on exact float comparisons,
and the whole point of the tensorized walk is that it cannot change a
solution.

GPU tolerance contract
----------------------
The GPU backends (``cupy``, ``torch`` — ``exact = False``) keep the
integer/geometry primitives exact (``==``: decode, hops, bottleneck
indices, macro counts, feasibility flags) but may diverge from the
IEEE-754 reference in the last ulps of float kernels (different FMA
contraction and reduction hardware). Their ``float_tolerance``
attribute (1e-9) is the maximum *relative* error the conformance tier
accepts for float outputs. End-to-end solution identity is still
guaranteed: ``MacroPartitionExplorer.explore`` re-scores the winning
gene through the scalar oracle on the host, so the reported solution
metrics are bit-identical regardless of which engine scored the
population. ``tests/test_backend_conformance.py`` pins both contracts
for every registered backend.

Content-key contract
--------------------
A backend changes *how fast* the task walk and the EA inner loop run,
never *what* they return, so ``backend`` (and the ``grid_eval`` /
``batch_eval`` switches) live in
:data:`repro.core.executor.EXECUTION_ONLY_FIELDS` and are excluded from
every content fingerprint — eval memos, serve job keys and store
entries are shared across backends.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

try:  # numpy is optional at this layer (the ``python`` backend runs
    import numpy as _np  # without it); the image bakes it in.
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None


def numpy_module():
    """The numpy module, or None — the single gate every tensorized
    path (batch_eval, grid_eval, the backends) consults."""
    return _np


def numpy_available() -> bool:
    """True when the vectorized engines can run on this interpreter."""
    return _np is not None


#: Gene encoding base — keep in sync with repro.core.macro_partition.
_ENCODING_BASE = 1000


# ----------------------------------------------------------------------
# The task-grid input contract
# ----------------------------------------------------------------------
@dataclass
class TaskGrid:
    """The tensorized task walk's input: one row per DSE task.

    All 2-D arrays are ``(tasks, layers)`` int64/float64; 1-D arrays are
    per-task or per-layer as noted. Integer arrays hold exact values
    (every product taken inside the kernels stays far below 2**53, so
    int -> float conversions are exact and match the scalar oracle's
    arbitrary-precision arithmetic bit for bit).
    """

    total_blocks: "object"  # (T, L) int64 — ceil(out_positions / WtDup)
    inputs_per_block: "object"  # (T, L) int64 — WtDup * rows
    outputs_per_block: "object"  # (T, L) int64 — WtDup * cols
    group_cap: "object"  # (T, L) int64 — min(WtDup*row_tiles, crossbars)
    crossbars: "object"  # (T, L) int64 — WtDup * set_size
    conversions_per_block_bit: "object"  # (T, L) int64
    bits: "object"  # (T,) int64 — ceil(PrecAct / ResDAC)
    adc_power: "object"  # (T, L) float64 — ADC power at required res.
    vector_ops: "object"  # (L,) float64 — ALU-only workload per layer
    per_crossbar_fixed: "object"  # (T,) float64 — XbSize*(DAC+S&H)
    peripheral_power: "object"  # (T,) float64 — (1-RatioRram)*TotalPower
    crossbar_latency: float
    act_bytes: float
    edram_bandwidth: float
    per_macro_fixed: float  # eDRAM + NoC + register power per macro
    adc_sample_rate: float
    alu_power: float
    alu_frequency: float
    min_macros: int  # ceil(L/2) under rule-b sharing, L otherwise
    macro_sharing: bool  # halves the ADC denominator (rule b)

    @property
    def num_tasks(self) -> int:
        return len(self.bits)

    @property
    def num_layers(self) -> int:
        return len(self.vector_ops)


# ----------------------------------------------------------------------
# The population-scoring input/output contract (batch_eval seam)
# ----------------------------------------------------------------------
@dataclass
class PopulationContext:
    """Gene-independent context for fused population scoring.

    Built once per (spec, budget, ResDAC) by
    :class:`repro.core.batch_eval.BatchPerformanceEvaluator` — all
    per-layer arrays are host numpy (float64/int64) regardless of the
    backend that consumes them, exactly like :class:`TaskGrid`. The
    inter-layer edge structure arrives as two CSR walks so the loop
    kernels (and their numba JIT) never touch Python containers:

    * ``comm_offsets`` / ``comm_consumer`` — producer-major, in
      ``spec.model.interlayer_edges()`` order: the §IV-B activation
      transfer accumulation order.
    * ``lat_offsets`` / ``lat_producer`` / ``lat_fraction`` —
      consumer-major: the fine-grained pipeline forward pass.
    """

    # Per-layer geometry / workload arrays (L,).
    mvm: "object"  # float64 — exact MVM time per layer
    load_num: "object"  # float64 — load-bytes numerator
    store_num: "object"  # float64 — store-bytes numerator
    total_blocks: "object"  # int64
    row_tiles: "object"  # int64
    merge_rounds: "object"  # int64 — ceil(log2(row_tiles)) when > 1
    per_round_num: "object"  # float64 — outputs_per_block * act_bytes
    out_bytes: "object"  # float64 — out_positions * cols * act_bytes
    adc_wl: "object"  # float64 — Eq. 5 ADC workload
    alu_wl: "object"  # float64 — Eq. 5 ALU workload
    adc_powers: "object"  # float64 — ADC power at required resolution
    # Inter-layer edges (CSR, host int64/float64).
    comm_offsets: "object"  # (L+1,) int64
    comm_consumer: "object"  # (E,) int64
    lat_offsets: "object"  # (L+1,) int64
    lat_producer: "object"  # (E,) int64
    lat_fraction: "object"  # (E,) float64
    # Scalars.
    denom: float  # Eq. 6 balanced-delay denominator
    per_macro_fixed: float
    crossbar_fixed: float
    peripheral_power: float
    adc_rate: float
    alu_rate: float
    alu_power: float
    adc_power_unit: float  # identical-macro ADC unit power (§V-C2)
    edram_bandwidth: float
    noc_port_bandwidth: float
    noc_hop_latency: float
    rram_power: float
    macs2: float  # 2 * model MACs
    overlap_window: int
    enable_macro_sharing: bool
    identical_macros: bool

    @property
    def num_layers(self) -> int:
        return len(self.mvm)


@dataclass
class PopulationScores:
    """Fused-kernel output: one host-numpy entry per gene, in order.

    Infeasible lanes are fully masked *inside* the kernel (metrics 0.0,
    ``bottleneck_layer`` -1, ``num_macros`` 0) so every field is
    defined and ``==``-comparable across backends — loop engines skip
    infeasible lanes entirely rather than propagating NaN.
    """

    feasible: "object"  # (P,) bool
    fitness: "object"  # (P,) float64 — EA fitness (img/s)
    period: "object"
    latency: "object"
    throughput: "object"
    tops: "object"
    power: "object"
    tops_per_watt: "object"
    energy_per_image: "object"
    edp: "object"
    bottleneck_layer: "object"  # (P,) int64 (-1 when infeasible)
    num_macros: "object"  # (P,) int64 (0 when infeasible)


def _bound_loops(
    total_blocks, inputs_per_block, outputs_per_block, group_cap,
    crossbars, conversions_per_block_bit, bits, adc_power, vector_ops,
    per_crossbar_fixed, peripheral_power, crossbar_latency, act_bytes,
    edram_bandwidth, per_macro_fixed, adc_sample_rate, alu_power,
    alu_frequency, min_macros, macro_sharing, out,
):
    """Scalar-loop bound kernel (the ``python`` and ``numba`` engine).

    Replicates :func:`repro.core.evaluator.throughput_upper_bound` one
    task at a time, in the exact operation order of the scalar code —
    this function is deliberately numba-``njit``-compatible (flat loops,
    no Python containers), so the JIT backend compiles it unchanged.
    """
    num_tasks, num_layers = total_blocks.shape
    for t in range(num_tasks):
        # Rule c's largest permitted macro group bounds eDRAM bandwidth.
        max_group = group_cap[t, 0]
        for l in range(1, num_layers):
            if group_cap[t, l] > max_group:
                max_group = group_cap[t, l]
        if max_group < 1:
            max_group = 1
        bandwidth = edram_bandwidth * max_group

        # Structural floor: exact MVM time, best-case load/store.
        period_floor = 0.0
        for l in range(num_layers):
            mvm = (total_blocks[t, l] * bits[t]) * crossbar_latency
            load = (
                (total_blocks[t, l] * inputs_per_block[t, l]) * act_bytes
            ) / bandwidth
            store = (
                (total_blocks[t, l] * outputs_per_block[t, l]) * act_bytes
            ) / bandwidth
            stage = mvm
            if load > stage:
                stage = load
            if store > stage:
                stage = store
            if stage > period_floor:
                period_floor = stage

        # Fixed-overhead floor (fewest macros any partition can use).
        total_crossbars = 0
        for l in range(num_layers):
            total_crossbars += crossbars[t, l]
        fixed = (
            min_macros * per_macro_fixed
            + total_crossbars * per_crossbar_fixed[t]
        )
        available = peripheral_power[t] - fixed
        if available <= 0:
            out[t] = 0.0
            continue

        # Eq. 6 power floor: holding every delay at D costs denom / D.
        adc_denom = 0.0
        alu_denom = 0.0
        for l in range(num_layers):
            conversions = (
                total_blocks[t, l] * bits[t]
            ) * conversions_per_block_bit[t, l]
            adc_wl = float(conversions)
            alu_wl = float(conversions) + vector_ops[l]
            adc_denom = adc_denom + (
                adc_power[t, l] * adc_wl / adc_sample_rate
            )
            alu_denom = alu_denom + (
                alu_power * alu_wl / alu_frequency
            )
        if macro_sharing:
            adc_denom = adc_denom / 2.0
        power_floor = (adc_denom + alu_denom) / available
        if power_floor > period_floor:
            period_floor = power_floor
        if period_floor <= 0:
            out[t] = math.inf
        else:
            out[t] = 1.0 / period_floor
    return out


def _score_loops(
    genes,
    mvm, load_num, store_num, total_blocks, row_tiles, merge_rounds,
    per_round_num, out_bytes, adc_wl, alu_wl, adc_powers,
    comm_offsets, comm_consumer, lat_offsets, lat_producer,
    lat_fraction,
    denom, per_macro_fixed, crossbar_fixed, peripheral_power,
    adc_rate, alu_rate, alu_power, adc_power_unit,
    edram_bandwidth, noc_port_bandwidth, noc_hop_latency,
    rram_power, macs2, overlap_window,
    enable_macro_sharing, identical_macros,
    feasible_out, fitness_out, period_out, latency_out,
    throughput_out, tops_out, power_out, tops_per_watt_out,
    energy_out, edp_out, bottleneck_out, num_macros_out,
):
    """Scalar-loop population kernel (the ``python``/``numba`` engine).

    Replicates the vectorized batch-eval math one gene at a time, in
    the exact per-lane operation order of the numpy engine (which in
    turn mirrors the scalar oracle), so outputs are bit-identical for
    every lane the oracle evaluates. Validation is the caller's job —
    this kernel assumes well-formed genes. Deliberately
    numba-``njit``-compatible: flat loops, preallocated scratch, no
    Python containers.
    """
    pop, n = genes.shape
    owners = _np.empty(n, _np.int64)
    counts = _np.empty(n, _np.int64)
    sbo = _np.empty(n, _np.int64)  # group start, by owner layer
    group_start = _np.empty(n, _np.int64)
    group_len = _np.empty(n, _np.int64)
    partner = _np.empty(n, _np.int64)
    adc_alloc = _np.empty(n, _np.float64)
    alu_alloc = _np.empty(n, _np.float64)
    adc_delay = _np.empty(n, _np.float64)
    alu_delay = _np.empty(n, _np.float64)
    load_arr = _np.empty(n, _np.float64)
    store_arr = _np.empty(n, _np.float64)
    comm = _np.empty(n, _np.float64)
    stage = _np.empty(n, _np.float64)
    starts = _np.empty(n, _np.float64)
    ow = overlap_window
    if ow < 1:
        ow = 1
    for p in range(pop):
        # -- decode: contiguous owner groups in layer order ------------
        total_macros = 0
        acc = 0
        for l in range(n):
            owner = genes[p, l] // _ENCODING_BASE
            owners[l] = owner
            counts[l] = genes[p, l] - owner * _ENCODING_BASE
        for l in range(n):
            sbo[l] = acc
            if owners[l] == l:
                acc += counts[l]
                total_macros += counts[l]
        for l in range(n):
            o = owners[l]
            group_start[l] = sbo[o]
            group_len[l] = counts[o]

        # -- Eq. 6 allocation + rule-b sharing -------------------------
        fixed = float(total_macros) * per_macro_fixed + crossbar_fixed
        available = peripheral_power - fixed
        feas = available > 0.0
        adc_alu_power = 0.0
        if identical_macros:
            if feas:
                adc_demand = adc_wl[0] / group_len[0]
                alu_demand = alu_wl[0] / group_len[0]
                for l in range(1, n):
                    v = adc_wl[l] / group_len[l]
                    if v > adc_demand:
                        adc_demand = v
                    v = alu_wl[l] / group_len[l]
                    if v > alu_demand:
                        alu_demand = v
                adc_share_weight = adc_power_unit * adc_demand / adc_rate
                alu_share_weight = alu_power * alu_demand / alu_rate
                weight_sum = adc_share_weight + alu_share_weight
                if weight_sum > 0.0:
                    adc_power_total = (
                        available * adc_share_weight / weight_sum
                    )
                    alu_power_total = (
                        available * alu_share_weight / weight_sum
                    )
                    per_macro_adc = adc_power_total / (
                        float(total_macros) * adc_power_unit
                    )
                    per_macro_alu = alu_power_total / (
                        float(total_macros) * alu_power
                    )
                    if per_macro_adc > 0.0 and per_macro_alu > 0.0:
                        for l in range(n):
                            bank = per_macro_adc * group_len[l]
                            lanes = per_macro_alu * group_len[l]
                            adc_delay[l] = adc_wl[l] / (adc_rate * bank)
                            alu_delay[l] = alu_wl[l] / (alu_rate * lanes)
                        adc_alu_power = adc_power_total + alu_power_total
                    else:
                        feas = False
                else:
                    feas = False
        else:
            if denom <= 0.0:
                feas = False
            if feas:
                balanced = denom / available
                t_adc = adc_rate * balanced
                t_alu = alu_rate * balanced
                for l in range(n):
                    adc_alloc[l] = adc_wl[l] / t_adc
                    alu_alloc[l] = alu_wl[l] / t_alu
                    partner[l] = -1
                # Sharing post-pass (rule b): per sharer layer i, in
                # ascending i order — the exact pair order the scalar
                # code receives from MacroPartition.from_gene.
                savings = 0.0
                if enable_macro_sharing:
                    for i in range(n):
                        if owners[i] == i:
                            continue
                        j = owners[i]
                        a_i = adc_alloc[i]
                        a_j = adc_alloc[j]
                        p_i = adc_powers[i]
                        p_j = adc_powers[j]
                        bank = a_j if a_j > a_i else a_i
                        unit = p_j if p_j > p_i else p_i
                        separate = p_j * a_j + p_i * a_i
                        merged = unit * bank
                        if merged < separate:
                            savings = savings + (separate - merged)
                            partner[i] = j
                            partner[j] = i
                if savings > 0.0 and savings < available:
                    scale = available / (available - savings)
                else:
                    scale = 1.0
                for l in range(n):
                    pj = partner[l]
                    if pj >= 0:
                        a_l = adc_alloc[l]
                        a_p = adc_alloc[pj]
                        bank2 = (a_l if a_l > a_p else a_p) * scale
                        dist = l - pj
                        if dist < 0:
                            dist = -dist
                        overlap = 1.0 - dist / ow
                        if overlap < 0.0:
                            overlap = 0.0
                        eff_adc = bank2 / (1.0 + overlap)
                    else:
                        eff_adc = adc_alloc[l] * scale
                    eff_alu = alu_alloc[l] * scale
                    adc_delay[l] = adc_wl[l] / (adc_rate * eff_adc)
                    alu_delay[l] = alu_wl[l] / (alu_rate * eff_alu)
                # Power drawn: shared banks counted once, at the pair's
                # first (owner-side) index; ordered accumulation.
                adc_used = 0.0
                for l in range(n):
                    pj = partner[l]
                    if pj >= 0:
                        if l < pj:
                            a_l = adc_alloc[l]
                            a_p = adc_alloc[pj]
                            bank2 = (a_l if a_l > a_p else a_p) * scale
                            pw_l = adc_powers[l]
                            pw_p = adc_powers[pj]
                            pw = pw_l if pw_l > pw_p else pw_p
                            adc_used = adc_used + pw * bank2
                    else:
                        adc_used = adc_used + (
                            adc_powers[l] * adc_alloc[l]
                        ) * scale
                alu_used = 0.0
                for l in range(n):
                    alu_used = alu_used + (
                        alu_power * alu_alloc[l]
                    ) * scale
                adc_alu_power = adc_used + alu_used

        if feas:
            # -- §IV-B stage times -------------------------------------
            tm = total_macros
            if tm < 1:
                tm = 1
            cols = int(math.ceil(math.sqrt(float(tm))))
            if cols < 1:
                cols = 1
            for l in range(n):
                bw = edram_bandwidth * group_len[l]
                load_arr[l] = load_num[l] / bw
                store_arr[l] = store_num[l] / bw
                commv = 0.0
                # Partial-sum merge for row-tiled layers spanning macros.
                if row_tiles[l] > 1 and group_len[l] > 1:
                    s = group_start[l]
                    neighbor = abs(s // cols - (s + 1) // cols) + abs(
                        s % cols - (s + 1) % cols
                    )
                    if neighbor < 1:
                        neighbor = 1
                    prb = per_round_num[l] / group_len[l]
                    per_block = merge_rounds[l] * (
                        prb / noc_port_bandwidth
                        + neighbor * noc_hop_latency
                    )
                    commv = commv + total_blocks[l] * per_block
                comm[l] = commv
            # Activation transfers, per inter-layer edge in model order.
            for producer in range(n):
                for e in range(
                    comm_offsets[producer], comm_offsets[producer + 1]
                ):
                    consumer = comm_consumer[e]
                    if owners[producer] == owners[consumer]:
                        continue
                    s0 = group_start[producer]
                    s1 = s0 + group_len[producer] - 1
                    d0 = group_start[consumer]
                    d1 = d0 + group_len[consumer] - 1
                    h1 = abs(s0 // cols - d0 // cols) + abs(
                        s0 % cols - d0 % cols
                    )
                    h2 = abs(s1 // cols - d0 // cols) + abs(
                        s1 % cols - d0 % cols
                    )
                    h3 = abs(s0 // cols - d1 // cols) + abs(
                        s0 % cols - d1 % cols
                    )
                    h4 = abs(s1 // cols - d1 // cols) + abs(
                        s1 % cols - d1 % cols
                    )
                    ha = h1 if h1 < h2 else h2
                    hb = h3 if h3 < h4 else h4
                    hmin = ha if ha < hb else hb
                    gp = group_len[producer]
                    gc = group_len[consumer]
                    ports = gp if gp < gc else gc
                    serialization = out_bytes[producer] / (
                        noc_port_bandwidth * ports
                    )
                    head = (
                        total_blocks[producer] * hmin
                    ) * noc_hop_latency
                    comm[producer] = comm[producer] + (
                        serialization + head
                    )
            # Stage maxima; argmax keeps the first occurrence like
            # np.argmax.
            per = 0.0
            bot = 0
            for l in range(n):
                st = mvm[l]
                if adc_delay[l] > st:
                    st = adc_delay[l]
                if alu_delay[l] > st:
                    st = alu_delay[l]
                if load_arr[l] > st:
                    st = load_arr[l]
                if store_arr[l] > st:
                    st = store_arr[l]
                if comm[l] > st:
                    st = comm[l]
                stage[l] = st
                if l == 0 or st > per:
                    per = st
                    bot = l
            # Fine-grained pipeline latency (forward pass).
            lat = 0.0
            for idx in range(n):
                s = 0.0
                for e in range(lat_offsets[idx], lat_offsets[idx + 1]):
                    prod = lat_producer[e]
                    cand = starts[prod] + stage[prod] * lat_fraction[e]
                    if cand > s:
                        s = cand
                starts[idx] = s
                end = s + stage[idx]
                if idx == 0 or end > lat:
                    lat = end
            # -- power account + derived metrics -----------------------
            power = rram_power + (fixed + adc_alu_power)
            throughput = 1.0 / per
            tops = macs2 / per / 1e12
            if power > 0.0:
                tpw = tops / power
            else:
                tpw = 0.0
            energy = power * lat
            edp = energy * lat
            feasible_out[p] = True
            fitness_out[p] = throughput
            period_out[p] = per
            latency_out[p] = lat
            throughput_out[p] = throughput
            tops_out[p] = tops
            power_out[p] = power
            tops_per_watt_out[p] = tpw
            energy_out[p] = energy
            edp_out[p] = edp
            bottleneck_out[p] = bot
            num_macros_out[p] = total_macros
        else:
            feasible_out[p] = False
            fitness_out[p] = 0.0
            period_out[p] = 0.0
            latency_out[p] = 0.0
            throughput_out[p] = 0.0
            tops_out[p] = 0.0
            power_out[p] = 0.0
            tops_per_watt_out[p] = 0.0
            energy_out[p] = 0.0
            edp_out[p] = 0.0
            bottleneck_out[p] = -1
            num_macros_out[p] = 0


# ----------------------------------------------------------------------
# Backend interface + built-in engines
# ----------------------------------------------------------------------
class ArrayBackend:
    """One array-execution engine for the tensorized DSE paths.

    Subclasses implement the op-level primitives and the fused kernels
    (task-grid bounds, population scoring); the registry hands out one
    shared instance per name. ``available()`` gates optional
    dependencies — an unavailable backend stays listed (with its
    reason) but cannot be selected.
    """

    #: Registry key; subclasses must override with a non-empty name.
    name: str = ""
    description: str = ""
    #: Exact backends are held to bit-identity (``==``) on every
    #: primitive and fused kernel. Non-exact (GPU) backends keep
    #: integer/geometry outputs exact but may diverge on float kernels
    #: by up to ``float_tolerance`` relative error.
    exact: bool = True
    float_tolerance: float = 0.0

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can execute on this interpreter."""
        return True

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        """Human-readable reason when :meth:`available` is False."""
        return None

    # -- op-level primitives (conformance-tested per backend) ----------
    def ordered_sum(self, terms) -> "object":
        """Left-to-right sum over axis 1 of a ``(T, L)`` array.

        Matches the scalar oracle's ordered Python ``sum`` — *not*
        numpy's pairwise ``np.sum``, which can differ in the last ulp.
        """
        raise NotImplementedError

    def ordered_max(self, terms) -> "object":
        """Maximum over axis 1 of a ``(T, L)`` array."""
        raise NotImplementedError

    def prune_mask(
        self, bounds, positions, incumbent_fitness: float,
        incumbent_index: int,
    ) -> "object":
        """Dominated-task mask over ``positions`` (task indices).

        True where the task provably cannot beat the incumbent: its
        bound is below the incumbent's fitness, or ties it with a
        larger task index (the executor's exact tie-break rule).
        """
        raise NotImplementedError

    def decode_population(self, genes) -> Tuple[
        "object", "object", "object", "object", "object"
    ]:
        """Decode a ``(P, L)`` gene array into macro-group arrays.

        Returns host arrays ``(owners, is_owner, total_macros,
        group_start, group_len)`` — integer-exact on every backend
        (``==``, GPU included). Validation is the caller's concern;
        this primitive assumes well-formed genes.
        """
        raise NotImplementedError

    def mesh_hops(self, a, b, cols) -> "object":
        """Elementwise MeshNoC hop count: Manhattan distance between
        macro ids ``a`` and ``b`` on a row-major mesh with ``cols``
        columns. Integer-exact on every backend."""
        raise NotImplementedError

    def compute_bounds(self, grid: TaskGrid) -> "object":
        """Per-task throughput upper bounds for a whole task grid.

        Must be bit-identical to calling :func:`repro.core.evaluator.
        throughput_upper_bound` once per task (within
        ``float_tolerance`` for non-exact backends).
        """
        raise NotImplementedError

    def score_population(
        self, ctx: PopulationContext, genes
    ) -> PopulationScores:
        """Fused batch-eval kernel: score a whole gene population.

        Must match the scalar oracle per lane — bit-identical for exact
        backends, within ``float_tolerance`` relative error on float
        fields for GPU backends (feasibility flags, bottleneck indices
        and macro counts stay exact everywhere). Outputs are host numpy
        arrays with infeasible lanes masked.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# Array-module adapters (numpy / cupy / torch)
# ----------------------------------------------------------------------
class _ArrayOps:
    """numpy-flavored adapter the vectorized engine is written against.

    For numpy every method delegates 1:1 (bit-identity with the
    pre-seam code is structural, not accidental); cupy reuses this
    class wholesale because its API is a numpy drop-in.
    """

    def __init__(self, xp) -> None:
        self.xp = xp
        self.float64 = xp.float64
        self.int64 = xp.int64
        self.bool_ = xp.bool_

    def asarray(self, a, dtype=None):
        return self.xp.asarray(a, dtype=dtype)

    def zeros(self, shape, dtype):
        return self.xp.zeros(shape, dtype=dtype)

    def full(self, shape, fill, dtype):
        return self.xp.full(shape, fill, dtype=dtype)

    def arange(self, n):
        return self.xp.arange(n, dtype=self.int64)

    def divmod(self, a, b):
        return self.xp.divmod(a, b)

    def take_along(self, a, idx):
        return self.xp.take_along_axis(a, idx, axis=1)

    def cumsum1(self, a):
        return self.xp.cumsum(a, axis=1)

    def sum1(self, a):
        return self.xp.sum(a, axis=1)

    def max1(self, a):
        return self.xp.max(a, axis=1)

    def argmax1(self, a):
        return self.xp.argmax(a, axis=1)

    def maximum(self, a, b):
        return self.xp.maximum(a, b)

    def minimum(self, a, b):
        return self.xp.minimum(a, b)

    def where(self, cond, a, b):
        return self.xp.where(cond, a, b)

    def abs(self, a):
        return self.xp.abs(a)

    def sqrt(self, a):
        return self.xp.sqrt(a)

    def ceil(self, a):
        return self.xp.ceil(a)

    def astype(self, a, dtype):
        return a.astype(dtype)

    def copy(self, a):
        return a.copy()

    def any(self, a) -> bool:
        return bool(self.xp.any(a))

    def errstate(self):
        return self.xp.errstate(all="ignore")

    def to_host(self, a):
        return a


class _CupyOps(_ArrayOps):
    """cupy flavor: no errstate (CUDA math never warns), explicit
    device-to-host copies on the way out."""

    def errstate(self):
        return contextlib.nullcontext()

    def to_host(self, a):
        return self.xp.asnumpy(a)


class _TorchOps:
    """torch flavor of the adapter interface.

    ``errstate()`` doubles as a float64-default guard: torch promotes
    ``python-float * int64-tensor`` to the *default* dtype (float32 out
    of the box), which would silently degrade the IEEE-754 contract —
    every fused kernel runs inside this context so mixed scalar/int
    arithmetic lands in float64, matching numpy's promotion rules.
    """

    def __init__(self, torch, device) -> None:
        self.torch = torch
        self.device = device
        self.float64 = torch.float64
        self.int64 = torch.int64
        self.bool_ = torch.bool

    def _wrap(self, x, ref=None):
        t = self.torch
        if isinstance(x, t.Tensor):
            return x
        dtype = ref.dtype if isinstance(ref, t.Tensor) else None
        return t.as_tensor(x, dtype=dtype, device=self.device)

    def asarray(self, a, dtype=None):
        t = self.torch
        if isinstance(a, t.Tensor):
            out = a.to(self.device)
            return out if dtype is None else out.to(dtype)
        return t.as_tensor(a, dtype=dtype, device=self.device)

    def zeros(self, shape, dtype):
        return self.torch.zeros(shape, dtype=dtype, device=self.device)

    def full(self, shape, fill, dtype):
        return self.torch.full(
            shape, fill, dtype=dtype, device=self.device
        )

    def arange(self, n):
        return self.torch.arange(
            n, dtype=self.int64, device=self.device
        )

    def divmod(self, a, b):
        q = self.torch.div(a, b, rounding_mode="floor")
        return q, a - q * b

    def take_along(self, a, idx):
        return self.torch.take_along_dim(a, idx, dim=1)

    def cumsum1(self, a):
        return self.torch.cumsum(a, dim=1)

    def sum1(self, a):
        return self.torch.sum(a, dim=1)

    def max1(self, a):
        return self.torch.max(a, dim=1).values

    def argmax1(self, a):
        return self.torch.argmax(a, dim=1)

    def maximum(self, a, b):
        return self.torch.maximum(self._wrap(a, b), self._wrap(b, a))

    def minimum(self, a, b):
        return self.torch.minimum(self._wrap(a, b), self._wrap(b, a))

    def where(self, cond, a, b):
        return self.torch.where(cond, self._wrap(a, b), self._wrap(b, a))

    def abs(self, a):
        return self.torch.abs(a)

    def sqrt(self, a):
        if not a.is_floating_point():
            a = a.to(self.float64)
        return self.torch.sqrt(a)

    def ceil(self, a):
        return self.torch.ceil(a)

    def astype(self, a, dtype):
        return a.to(dtype)

    def copy(self, a):
        return a.clone()

    def any(self, a) -> bool:
        return bool(self.torch.any(a))

    @contextlib.contextmanager
    def errstate(self):
        prev = self.torch.get_default_dtype()
        self.torch.set_default_dtype(self.torch.float64)
        try:
            yield
        finally:
            self.torch.set_default_dtype(prev)

    def to_host(self, a):
        return a.detach().cpu().numpy()


class VectorBackend(ArrayBackend):
    """Shared vectorized engine, parameterized by an array adapter.

    ``numpy``, ``cupy`` and ``torch`` are all this implementation with
    a different :class:`_ArrayOps` flavor — one source of truth for the
    vectorized math, so the GPU backends cannot drift from the pinned
    numpy semantics except through the adapter (which the conformance
    tier exercises per backend).
    """

    def _ops(self):
        raise NotImplementedError

    # -- op-level primitives -------------------------------------------
    def ordered_sum(self, terms):
        ops = self._ops()
        terms = ops.asarray(terms, dtype=ops.float64)
        acc = ops.zeros(terms.shape[0], ops.float64)
        for l in range(terms.shape[1]):  # layer order == scalar order
            acc = acc + terms[:, l]
        return ops.to_host(acc)

    def ordered_max(self, terms):
        ops = self._ops()
        terms = ops.asarray(terms, dtype=ops.float64)
        acc = ops.copy(terms[:, 0])
        for l in range(1, terms.shape[1]):
            acc = ops.maximum(acc, terms[:, l])
        return ops.to_host(acc)

    def prune_mask(
        self, bounds, positions, incumbent_fitness, incumbent_index
    ):
        ops = self._ops()
        bounds = ops.asarray(bounds, dtype=ops.float64)
        positions = ops.asarray(positions, dtype=ops.int64)
        values = bounds[positions]
        mask = (values < incumbent_fitness) | (
            (values == incumbent_fitness)
            & (positions > incumbent_index)
        )
        return ops.to_host(mask)

    def decode_population(self, genes):
        ops = self._ops()
        genes = ops.asarray(genes, dtype=ops.int64)
        decoded = self._decode_dev(ops, genes)
        return tuple(ops.to_host(a) for a in decoded)

    def mesh_hops(self, a, b, cols):
        ops = self._ops()
        a = ops.asarray(a, dtype=ops.int64)
        b = ops.asarray(b, dtype=ops.int64)
        cols = ops.asarray(cols, dtype=ops.int64)
        return ops.to_host(self._hops_dev(ops, a, b, cols))

    # -- device-side helpers -------------------------------------------
    @staticmethod
    def _hops_dev(ops, a, b, cols):
        return ops.abs(a // cols - b // cols) + ops.abs(
            a % cols - b % cols
        )

    @staticmethod
    def _decode_dev(ops, genes):
        """(owners, is_owner, total_macros, group_start, group_len) on
        the device; contiguous owner groups in layer order, exactly as
        ``MacroPartition.from_gene`` assigns them."""
        n = genes.shape[1]
        owners, counts = ops.divmod(genes, _ENCODING_BASE)
        layer_idx = ops.arange(n)
        is_owner = owners == layer_idx[None, :]
        sizes = ops.where(is_owner, counts, 0)
        group_starts_by_owner = ops.cumsum1(sizes) - sizes
        total_macros = ops.sum1(sizes)
        group_start = ops.take_along(group_starts_by_owner, owners)
        group_len = ops.take_along(counts, owners)
        return owners, is_owner, total_macros, group_start, group_len

    @staticmethod
    def _ordered_sum_dev(ops, terms):
        acc = ops.zeros(terms.shape[0], ops.float64)
        for l in range(terms.shape[1]):
            acc = acc + terms[:, l]
        return acc

    @staticmethod
    def _ordered_max_dev(ops, terms):
        acc = ops.copy(terms[:, 0])
        for l in range(1, terms.shape[1]):
            acc = ops.maximum(acc, terms[:, l])
        return acc

    # -- fused kernels -------------------------------------------------
    def compute_bounds(self, grid: TaskGrid):
        ops = self._ops()
        with ops.errstate():
            total_blocks = ops.asarray(
                grid.total_blocks, dtype=ops.int64
            )
            inputs_per_block = ops.asarray(
                grid.inputs_per_block, dtype=ops.int64
            )
            outputs_per_block = ops.asarray(
                grid.outputs_per_block, dtype=ops.int64
            )
            group_cap = ops.asarray(grid.group_cap, dtype=ops.float64)
            crossbars = ops.asarray(grid.crossbars, dtype=ops.int64)
            conversions_pbb = ops.asarray(
                grid.conversions_per_block_bit, dtype=ops.int64
            )
            bits = ops.asarray(grid.bits, dtype=ops.int64)
            adc_power = ops.asarray(grid.adc_power, dtype=ops.float64)
            vector_ops = ops.asarray(
                grid.vector_ops, dtype=ops.float64
            )
            per_crossbar_fixed = ops.asarray(
                grid.per_crossbar_fixed, dtype=ops.float64
            )
            peripheral_power = ops.asarray(
                grid.peripheral_power, dtype=ops.float64
            )
            # Structural floor. Operation order mirrors the scalar
            # PerformanceEvaluator helpers: (blocks * bits) * latency,
            # ((blocks * per_block) * act_bytes) / bandwidth.
            max_group = ops.maximum(
                1, self._ordered_max_dev(ops, group_cap)
            )
            bandwidth = grid.edram_bandwidth * max_group
            mvm = (
                total_blocks * bits[:, None]
            ) * grid.crossbar_latency
            load = (
                (total_blocks * inputs_per_block) * grid.act_bytes
            ) / bandwidth[:, None]
            store = (
                (total_blocks * outputs_per_block) * grid.act_bytes
            ) / bandwidth[:, None]
            stage = ops.maximum(ops.maximum(mvm, load), store)
            period_floor = self._ordered_max_dev(ops, stage)

            # Fixed-overhead floor (integer sums are exact in any order).
            total_crossbars = ops.sum1(crossbars)
            fixed = (
                grid.min_macros * grid.per_macro_fixed
                + total_crossbars * per_crossbar_fixed
            )
            available = peripheral_power - fixed

            # Eq. 6 power floor with the rule-b sharing halving.
            conversions = (
                total_blocks * bits[:, None]
            ) * conversions_pbb
            adc_wl = ops.astype(conversions, ops.float64)
            alu_wl = adc_wl + vector_ops[None, :]
            adc_denom = self._ordered_sum_dev(
                ops, adc_power * adc_wl / grid.adc_sample_rate
            )
            alu_denom = self._ordered_sum_dev(
                ops, grid.alu_power * alu_wl / grid.alu_frequency
            )
            if grid.macro_sharing:
                adc_denom = adc_denom / 2.0
            period = ops.maximum(
                period_floor, (adc_denom + alu_denom) / available
            )
            result = ops.where(
                available <= 0,
                0.0,
                ops.where(period <= 0, math.inf, 1.0 / period),
            )
            return ops.to_host(result)

    def score_population(self, ctx: PopulationContext, genes):
        """Vectorized batch-eval kernel — the pre-seam numpy math of
        ``BatchPerformanceEvaluator``, verbatim, against the adapter.

        Host-level control flow (edge CSR walks, per-layer python
        loops) reads the *host* context arrays; only the elementwise
        ``(population, layers)`` math runs on the device.
        """
        if _np is None:  # pragma: no cover - ctx assembly needs numpy
            raise ConfigurationError(
                "batched evaluation requires numpy (the "
                "PopulationContext arrays are numpy even for the "
                "loop backends)"
            )
        ops = self._ops()
        genes_host = _np.asarray(genes, dtype=_np.int64)
        pop, n = genes_host.shape
        with ops.errstate():
            genes_d = ops.asarray(genes_host, dtype=ops.int64)
            owners, is_owner, total_macros, group_start, group_len = (
                self._decode_dev(ops, genes_d)
            )
            # Device copies of the per-layer context arrays that feed
            # elementwise math (scalars stay host python floats/ints).
            adc_wl = ops.asarray(ctx.adc_wl, dtype=ops.float64)
            alu_wl = ops.asarray(ctx.alu_wl, dtype=ops.float64)
            adc_powers = ops.asarray(ctx.adc_powers, dtype=ops.float64)
            mvm = ops.asarray(ctx.mvm, dtype=ops.float64)
            load_num = ops.asarray(ctx.load_num, dtype=ops.float64)
            store_num = ops.asarray(ctx.store_num, dtype=ops.float64)

            # -- Eq. 6 allocation + rule-b sharing ---------------------
            fixed = (
                ops.astype(total_macros, ops.float64)
                * ctx.per_macro_fixed
                + ctx.crossbar_fixed
            )
            available = ctx.peripheral_power - fixed
            feasible = available > 0.0
            if ctx.identical_macros:
                macro_count = group_len  # every group has >= 1 macro
                adc_demand = ops.max1(adc_wl[None, :] / macro_count)
                alu_demand = ops.max1(alu_wl[None, :] / macro_count)
                adc_share_weight = (
                    ctx.adc_power_unit * adc_demand / ctx.adc_rate
                )
                alu_share_weight = (
                    ctx.alu_power * alu_demand / ctx.alu_rate
                )
                weight_sum = adc_share_weight + alu_share_weight
                feasible = feasible & (weight_sum > 0.0)
                adc_power_total = (
                    available * adc_share_weight / weight_sum
                )
                alu_power_total = (
                    available * alu_share_weight / weight_sum
                )
                per_macro_adc = adc_power_total / (
                    total_macros * ctx.adc_power_unit
                )
                per_macro_alu = alu_power_total / (
                    total_macros * ctx.alu_power
                )
                feasible = feasible & (per_macro_adc > 0.0) & (
                    per_macro_alu > 0.0
                )
                bank = per_macro_adc[:, None] * macro_count
                lanes = per_macro_alu[:, None] * macro_count
                adc_delay = adc_wl[None, :] / (ctx.adc_rate * bank)
                alu_delay = alu_wl[None, :] / (ctx.alu_rate * lanes)
                adc_alu_power = adc_power_total + alu_power_total
            else:
                if ctx.denom <= 0:
                    # Gene-independent: the scalar path raises for
                    # every gene.
                    feasible = ops.zeros(pop, ops.bool_)
                balanced_delay = ctx.denom / available
                adc_alloc = adc_wl[None, :] / (
                    ctx.adc_rate * balanced_delay
                )[:, None]
                alu_alloc = alu_wl[None, :] / (
                    ctx.alu_rate * balanced_delay
                )[:, None]

                # Sharing post-pass (rule b): per sharer layer i, in
                # ascending i order — the exact pair order the scalar
                # code receives from MacroPartition.from_gene.
                savings = ops.zeros(pop, ops.float64)
                partner = ops.full((pop, n), -1, ops.int64)
                rows = ops.arange(pop)
                if ctx.enable_macro_sharing:
                    for i in range(n):
                        sharer = ~is_owner[:, i]
                        if not ops.any(sharer):
                            continue
                        j = owners[:, i]
                        a_i = adc_alloc[:, i]
                        a_j = adc_alloc[rows, j]
                        p_i = adc_powers[i]
                        p_j = adc_powers[j]
                        bank = ops.maximum(a_j, a_i)
                        unit = ops.maximum(p_j, p_i)
                        separate = p_j * a_j + p_i * a_i
                        merged = unit * bank
                        include = sharer & (merged < separate)
                        savings = ops.where(
                            include, savings + (separate - merged),
                            savings,
                        )
                        partner[:, i] = ops.where(
                            include, j, partner[:, i]
                        )
                        prev = partner[rows, j]
                        partner[rows, j] = ops.where(include, i, prev)

                apply_scale = (savings > 0.0) & (savings < available)
                scale = ops.where(
                    apply_scale,
                    available / ops.where(
                        apply_scale, available - savings, 1.0
                    ),
                    1.0,
                )

                has_partner = partner >= 0
                partner_idx = ops.where(has_partner, partner, 0)
                partner_alloc = ops.take_along(adc_alloc, partner_idx)
                bank = (
                    ops.maximum(adc_alloc, partner_alloc)
                    * scale[:, None]
                )
                layer_idx = ops.arange(n)
                distance = ops.abs(layer_idx[None, :] - partner_idx)
                overlap = ops.maximum(
                    0.0,
                    1.0 - distance / max(1, ctx.overlap_window),
                )
                effective_adc = ops.where(
                    has_partner,
                    bank / (1.0 + overlap),
                    adc_alloc * scale[:, None],
                )
                effective_alu = alu_alloc * scale[:, None]
                adc_delay = adc_wl[None, :] / (
                    ctx.adc_rate * effective_adc
                )
                alu_delay = alu_wl[None, :] / (
                    ctx.alu_rate * effective_alu
                )

                # Power drawn: shared banks counted once, at the pair's
                # first (owner-side) index; ordered accumulation
                # matches the scalar loop.
                adc_power_used = ops.zeros(pop, ops.float64)
                for l in range(n):
                    hp = has_partner[:, l]
                    pidx = partner_idx[:, l]
                    term_solo = (
                        adc_powers[l] * adc_alloc[:, l]
                    ) * scale
                    bank_l = ops.maximum(
                        adc_alloc[:, l], adc_alloc[rows, pidx]
                    ) * scale
                    term_pair = ops.maximum(
                        adc_powers[l], adc_powers[pidx]
                    ) * bank_l
                    count_here = ~hp | (pidx > l)
                    term = ops.where(hp, term_pair, term_solo)
                    adc_power_used = ops.where(
                        count_here, adc_power_used + term,
                        adc_power_used,
                    )
                alu_power_used = ops.zeros(pop, ops.float64)
                for l in range(n):
                    alu_power_used = alu_power_used + (
                        ctx.alu_power * alu_alloc[:, l]
                    ) * scale
                adc_alu_power = adc_power_used + alu_power_used

            # -- §IV-B stage times -------------------------------------
            bandwidth = ctx.edram_bandwidth * group_len
            load = load_num[None, :] / bandwidth
            store = store_num[None, :] / bandwidth
            comm = ops.zeros((pop, n), ops.float64)
            cols = ops.maximum(
                1,
                ops.astype(
                    ops.ceil(
                        ops.sqrt(ops.maximum(1, total_macros))
                    ),
                    ops.int64,
                ),
            )
            # Partial-sum merge for row-tiled layers spanning macros.
            for l in range(n):
                if int(ctx.row_tiles[l]) <= 1:
                    continue
                multi = group_len[:, l] > 1
                if not ops.any(multi):
                    continue
                start = group_start[:, l]
                neighbor = self._hops_dev(ops, start, start + 1, cols)
                per_round_bytes = (
                    float(ctx.per_round_num[l]) / group_len[:, l]
                )
                per_block = int(ctx.merge_rounds[l]) * (
                    per_round_bytes / ctx.noc_port_bandwidth
                    + ops.maximum(1, neighbor) * ctx.noc_hop_latency
                )
                merge_time = int(ctx.total_blocks[l]) * per_block
                comm[:, l] = ops.where(
                    multi, comm[:, l] + merge_time, comm[:, l]
                )
            # Activation transfers, per inter-layer edge in model order.
            for producer in range(n):
                lo = int(ctx.comm_offsets[producer])
                hi = int(ctx.comm_offsets[producer + 1])
                for e in range(lo, hi):
                    consumer = int(ctx.comm_consumer[e])
                    same = owners[:, producer] == owners[:, consumer]
                    s0 = group_start[:, producer]
                    s1 = s0 + group_len[:, producer] - 1
                    d0 = group_start[:, consumer]
                    d1 = d0 + group_len[:, consumer] - 1
                    hops = ops.minimum(
                        ops.minimum(
                            self._hops_dev(ops, s0, d0, cols),
                            self._hops_dev(ops, s1, d0, cols),
                        ),
                        ops.minimum(
                            self._hops_dev(ops, s0, d1, cols),
                            self._hops_dev(ops, s1, d1, cols),
                        ),
                    )
                    ports = ops.minimum(
                        group_len[:, producer], group_len[:, consumer]
                    )
                    serialization = float(ctx.out_bytes[producer]) / (
                        ctx.noc_port_bandwidth * ports
                    )
                    head = (
                        int(ctx.total_blocks[producer]) * hops
                    ) * ctx.noc_hop_latency
                    comm[:, producer] = ops.where(
                        same,
                        comm[:, producer],
                        comm[:, producer] + (serialization + head),
                    )

            stage_total = ops.maximum(mvm[None, :], adc_delay)
            stage_total = ops.maximum(stage_total, alu_delay)
            stage_total = ops.maximum(stage_total, load)
            stage_total = ops.maximum(stage_total, store)
            stage_total = ops.maximum(stage_total, comm)

            period = ops.max1(stage_total)
            bottleneck = ops.argmax1(stage_total)

            # Fine-grained pipeline latency (vectorized forward pass).
            starts = ops.zeros((pop, n), ops.float64)
            ends = ops.zeros((pop, n), ops.float64)
            for idx in range(n):
                start = ops.zeros(pop, ops.float64)
                lo = int(ctx.lat_offsets[idx])
                hi = int(ctx.lat_offsets[idx + 1])
                for e in range(lo, hi):
                    producer = int(ctx.lat_producer[e])
                    fraction = float(ctx.lat_fraction[e])
                    start = ops.maximum(
                        start,
                        starts[:, producer]
                        + stage_total[:, producer] * fraction,
                    )
                starts[:, idx] = start
                ends[:, idx] = start + stage_total[:, idx]
            latency = (
                ops.max1(ends) if n else ops.zeros(pop, ops.float64)
            )

            # -- power account + derived metrics -----------------------
            power = ctx.rram_power + (fixed + adc_alu_power)
            throughput = 1.0 / period
            tops = ctx.macs2 / period / 1e12
            tops_per_watt = ops.where(power > 0, tops / power, 0.0)
            energy = power * latency
            edp = energy * latency

            def _mask(values):
                return ops.where(feasible, values, 0.0)

            return PopulationScores(
                feasible=ops.to_host(feasible),
                fitness=ops.to_host(_mask(throughput)),
                period=ops.to_host(_mask(period)),
                latency=ops.to_host(_mask(latency)),
                throughput=ops.to_host(_mask(throughput)),
                tops=ops.to_host(_mask(tops)),
                power=ops.to_host(_mask(power)),
                tops_per_watt=ops.to_host(_mask(tops_per_watt)),
                energy_per_image=ops.to_host(_mask(energy)),
                edp=ops.to_host(_mask(edp)),
                bottleneck_layer=ops.to_host(
                    ops.where(feasible, bottleneck, -1)
                ),
                num_macros=ops.to_host(
                    ops.where(feasible, total_macros, 0)
                ),
            )


class NumpyBackend(VectorBackend):
    """Vectorized ``(tasks, layers)`` evaluation (the default)."""

    name = "numpy"
    description = "vectorized numpy engine (default)"
    _ops_cache: Optional[_ArrayOps] = None

    @classmethod
    def available(cls) -> bool:
        return _np is not None

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        if _np is None:  # pragma: no cover - the image bakes numpy in
            return "numpy is not importable on this interpreter"
        return None

    def _ops(self):
        if NumpyBackend._ops_cache is None:
            NumpyBackend._ops_cache = _ArrayOps(_np)
        return NumpyBackend._ops_cache


class CupyBackend(VectorBackend):
    """The vectorized engine on CUDA through cupy (numpy drop-in).

    Registered unconditionally, like a device technology; available
    only when cupy imports *and* a CUDA device is present. Float
    kernels are held to the 1e-9 relative GPU tolerance; integer and
    geometry outputs stay exact.
    """

    name = "cupy"
    description = "cupy CUDA engine (optional dependency, GPU)"
    exact = False
    float_tolerance = 1e-9
    _ops_cache: Optional[_CupyOps] = None

    @classmethod
    def available(cls) -> bool:
        if _np is None:
            return False
        try:
            import cupy

            return int(cupy.cuda.runtime.getDeviceCount()) > 0
        except Exception:
            return False

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        if not cls.available():
            return (
                "cupy with a visible CUDA device is required "
                "(install cupy and run on a GPU host to enable it)"
            )
        return None  # pragma: no cover - needs a CUDA device

    def _ops(self):  # pragma: no cover - needs a CUDA device
        if CupyBackend._ops_cache is None:
            import cupy

            CupyBackend._ops_cache = _CupyOps(cupy)
        return CupyBackend._ops_cache


class TorchBackend(VectorBackend):
    """The vectorized engine on torch tensors (CUDA when available).

    Falls back to CPU tensors without a GPU — still useful as an
    independent execution engine for conformance cross-checks. Float
    kernels are held to the 1e-9 relative GPU tolerance; integer and
    geometry outputs stay exact.
    """

    name = "torch"
    description = "torch tensor engine (optional dependency, GPU/CPU)"
    exact = False
    float_tolerance = 1e-9
    _ops_cache: Optional[_TorchOps] = None

    @classmethod
    def available(cls) -> bool:
        if _np is None:
            return False
        try:
            import torch  # noqa: F401
        except Exception:
            return False
        return True

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        if not cls.available():
            return (
                "torch is not importable on this interpreter "
                "(install torch to enable the tensor backend)"
            )
        return None  # pragma: no cover - torch present

    def _ops(self):  # pragma: no cover - needs torch installed
        if TorchBackend._ops_cache is None:
            import torch

            device = "cuda" if torch.cuda.is_available() else "cpu"
            TorchBackend._ops_cache = _TorchOps(torch, device)
        return TorchBackend._ops_cache


class PythonBackend(ArrayBackend):
    """Dependency-free scalar loops — the conformance reference."""

    name = "python"
    description = "pure-Python loop engine (reference / fallback)"

    @staticmethod
    def _rows(terms) -> List[Sequence[float]]:
        return [list(row) for row in terms]

    def ordered_sum(self, terms):
        out = []
        for row in self._rows(terms):
            acc = 0.0
            for value in row:
                acc = acc + float(value)
            out.append(acc)
        return out

    def ordered_max(self, terms):
        out = []
        for row in self._rows(terms):
            acc = float(row[0])
            for value in row[1:]:
                value = float(value)
                if value > acc:
                    acc = value
            out.append(acc)
        return out

    def prune_mask(
        self, bounds, positions, incumbent_fitness, incumbent_index
    ):
        values = [float(bounds[int(p)]) for p in positions]
        return [
            value < incumbent_fitness
            or (
                value == incumbent_fitness
                and int(position) > incumbent_index
            )
            for value, position in zip(values, positions)
        ]

    def decode_population(self, genes):
        if _np is None:  # pragma: no cover - gene arrays are numpy
            raise ConfigurationError(
                "population decoding returns numpy arrays; numpy is "
                "not importable on this interpreter"
            )
        genes = _np.asarray(genes, dtype=_np.int64)
        pop, n = genes.shape
        owners = _np.zeros((pop, n), dtype=_np.int64)
        is_owner = _np.zeros((pop, n), dtype=bool)
        total_macros = _np.zeros(pop, dtype=_np.int64)
        group_start = _np.zeros((pop, n), dtype=_np.int64)
        group_len = _np.zeros((pop, n), dtype=_np.int64)
        for p in range(pop):
            counts = []
            starts = []
            acc = 0
            total = 0
            for l in range(n):
                owner = int(genes[p, l]) // _ENCODING_BASE
                count = int(genes[p, l]) - owner * _ENCODING_BASE
                owners[p, l] = owner
                is_owner[p, l] = owner == l
                counts.append(count)
                starts.append(acc)
                if owner == l:
                    acc += count
                    total += count
            total_macros[p] = total
            for l in range(n):
                owner = int(owners[p, l])
                group_start[p, l] = starts[owner]
                group_len[p, l] = counts[owner]
        return owners, is_owner, total_macros, group_start, group_len

    def mesh_hops(self, a, b, cols):
        if _np is None:  # pragma: no cover - hop arrays are numpy
            raise ConfigurationError(
                "mesh_hops returns numpy arrays; numpy is not "
                "importable on this interpreter"
            )
        a = _np.asarray(a, dtype=_np.int64)
        b = _np.asarray(b, dtype=_np.int64)
        cols_arr = _np.broadcast_to(
            _np.asarray(cols, dtype=_np.int64), a.shape
        )
        out = _np.zeros(a.shape, dtype=_np.int64)
        flat_a = a.ravel()
        flat_b = b.ravel()
        flat_c = cols_arr.ravel()
        flat_out = out.ravel()
        for i in range(flat_a.shape[0]):
            av = int(flat_a[i])
            bv = int(flat_b[i])
            cv = int(flat_c[i])
            flat_out[i] = abs(av // cv - bv // cv) + abs(
                av % cv - bv % cv
            )
        return out

    def _kernel(self):
        """The bound loop kernel to run (the JIT backend overrides)."""
        return _bound_loops

    def _score_kernel(self):
        """The population loop kernel (the JIT backend overrides)."""
        return _score_loops

    def compute_bounds(self, grid: TaskGrid):
        if _np is None:  # pragma: no cover - grid assembly needs numpy
            raise ConfigurationError(
                "grid evaluation requires numpy (the TaskGrid arrays "
                "are numpy even for the loop backends)"
            )
        out = _np.zeros(grid.num_tasks, dtype=_np.float64)
        return self._kernel()(
            grid.total_blocks, grid.inputs_per_block,
            grid.outputs_per_block, grid.group_cap, grid.crossbars,
            grid.conversions_per_block_bit, grid.bits, grid.adc_power,
            grid.vector_ops, grid.per_crossbar_fixed,
            grid.peripheral_power, grid.crossbar_latency,
            grid.act_bytes, grid.edram_bandwidth, grid.per_macro_fixed,
            grid.adc_sample_rate, grid.alu_power, grid.alu_frequency,
            grid.min_macros, grid.macro_sharing, out,
        )

    def score_population(self, ctx: PopulationContext, genes):
        if _np is None:  # pragma: no cover - ctx assembly needs numpy
            raise ConfigurationError(
                "batched evaluation requires numpy (the "
                "PopulationContext arrays are numpy even for the "
                "loop backends)"
            )
        genes = _np.asarray(genes, dtype=_np.int64)
        pop = genes.shape[0]
        feasible = _np.zeros(pop, dtype=bool)
        fitness = _np.zeros(pop, dtype=_np.float64)
        period = _np.zeros(pop, dtype=_np.float64)
        latency = _np.zeros(pop, dtype=_np.float64)
        throughput = _np.zeros(pop, dtype=_np.float64)
        tops = _np.zeros(pop, dtype=_np.float64)
        power = _np.zeros(pop, dtype=_np.float64)
        tops_per_watt = _np.zeros(pop, dtype=_np.float64)
        energy = _np.zeros(pop, dtype=_np.float64)
        edp = _np.zeros(pop, dtype=_np.float64)
        bottleneck = _np.zeros(pop, dtype=_np.int64)
        num_macros = _np.zeros(pop, dtype=_np.int64)
        # errstate: the kernel's per-lane numpy-scalar arithmetic may
        # produce inf/nan exactly where the vectorized engine does;
        # suppress the matching warnings the same way.
        with _np.errstate(all="ignore"):
            self._score_kernel()(
                genes,
                ctx.mvm, ctx.load_num, ctx.store_num, ctx.total_blocks,
                ctx.row_tiles, ctx.merge_rounds, ctx.per_round_num,
                ctx.out_bytes, ctx.adc_wl, ctx.alu_wl, ctx.adc_powers,
                ctx.comm_offsets, ctx.comm_consumer, ctx.lat_offsets,
                ctx.lat_producer, ctx.lat_fraction,
                ctx.denom, ctx.per_macro_fixed, ctx.crossbar_fixed,
                ctx.peripheral_power, ctx.adc_rate, ctx.alu_rate,
                ctx.alu_power, ctx.adc_power_unit,
                ctx.edram_bandwidth, ctx.noc_port_bandwidth,
                ctx.noc_hop_latency, ctx.rram_power, ctx.macs2,
                int(ctx.overlap_window),
                bool(ctx.enable_macro_sharing),
                bool(ctx.identical_macros),
                feasible, fitness, period, latency, throughput, tops,
                power, tops_per_watt, energy, edp, bottleneck,
                num_macros,
            )
        return PopulationScores(
            feasible=feasible, fitness=fitness, period=period,
            latency=latency, throughput=throughput, tops=tops,
            power=power, tops_per_watt=tops_per_watt,
            energy_per_image=energy, edp=edp,
            bottleneck_layer=bottleneck, num_macros=num_macros,
        )


class NumbaBackend(PythonBackend):
    """The loop kernels JIT-compiled with ``numba.njit`` (IEEE-strict).

    ``fastmath`` stays off: reassociation would break the bit-identity
    contract that makes the tensorized walk safe. Both compiled kernels
    (bounds and population scoring) are cached on the class after the
    first call.
    """

    name = "numba"
    description = "numba-JIT loop engine (optional dependency)"
    _compiled = None
    _score_compiled = None

    @classmethod
    def available(cls) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return _np is not None

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        if not cls.available():
            return (
                "numba is not importable on this interpreter "
                "(install numba to enable the JIT backend)"
            )
        return None  # pragma: no cover - numba present

    def _kernel(self):  # pragma: no cover - needs numba installed
        if NumbaBackend._compiled is None:
            import numba

            NumbaBackend._compiled = numba.njit(
                cache=False, fastmath=False
            )(_bound_loops)
        return NumbaBackend._compiled

    def _score_kernel(self):  # pragma: no cover - needs numba installed
        if NumbaBackend._score_compiled is None:
            import numba

            NumbaBackend._score_compiled = numba.njit(
                cache=False, fastmath=False
            )(_score_loops)
        return NumbaBackend._score_compiled


# ----------------------------------------------------------------------
# Registry (mirrors repro.hardware.tech)
# ----------------------------------------------------------------------
#: Names whose engines are defined by this module and cannot be
#: replaced with different implementations.
BUILTIN_BACKENDS: Tuple[str, ...] = (
    "numpy", "python", "numba", "cupy", "torch"
)

#: The backend every config selects unless told otherwise.
DEFAULT_BACKEND = "numpy"

_REGISTRY: Dict[str, ArrayBackend] = {}


def _ensure_builtins() -> None:
    if not _REGISTRY:
        for backend_cls in (
            NumpyBackend, PythonBackend, NumbaBackend, CupyBackend,
            TorchBackend,
        ):
            _REGISTRY[backend_cls.name] = backend_cls()


def register_backend(
    backend: ArrayBackend, replace: bool = False
) -> ArrayBackend:
    """Add a backend instance to the registry.

    Re-registering an existing name requires ``replace=True``; the
    built-in names can never be rebound to a different class (the
    conformance suite and the CLI docs are defined against them) —
    re-registering an instance of the *same* class is a no-op success.
    """
    _ensure_builtins()
    if not isinstance(backend, ArrayBackend):
        raise ConfigurationError(
            f"expected an ArrayBackend, got {type(backend).__name__}"
        )
    if not backend.name or not isinstance(backend.name, str):
        raise ConfigurationError(
            "backend name must be a non-empty string"
        )
    existing = _REGISTRY.get(backend.name)
    if backend.name in BUILTIN_BACKENDS:
        if type(existing) is not type(backend):
            raise ConfigurationError(
                f"the built-in {backend.name!r} backend cannot be "
                "replaced; register the engine under a new name"
            )
        return existing
    if existing is not None and not replace:
        raise ConfigurationError(
            f"backend {backend.name!r} is already registered "
            "(pass replace=True to update it)"
        )
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a user-registered backend (built-ins cannot be removed)."""
    _ensure_builtins()
    if name in BUILTIN_BACKENDS:
        raise ConfigurationError(
            f"the built-in {name!r} backend cannot be unregistered"
        )
    _REGISTRY.pop(name, None)


def get_backend(name: str = DEFAULT_BACKEND) -> ArrayBackend:
    """Look up an *available* backend by name.

    Unknown names and registered-but-unavailable backends (e.g.
    ``numba`` without numba installed, ``cupy`` without a CUDA device)
    both raise :class:`~repro.errors.ConfigurationError` with an
    actionable message — configs fail fast at construction, not
    mid-walk.
    """
    _ensure_builtins()
    if isinstance(name, ArrayBackend):
        return name
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: "
            f"{available_backends()}"
        ) from None
    if not backend.available():
        raise ConfigurationError(
            f"backend {name!r} is unavailable: "
            f"{backend.unavailable_reason()}"
        )
    return backend


def available_backends() -> List[str]:
    """Registered backend names, built-ins first, extras sorted."""
    _ensure_builtins()
    extras = sorted(n for n in _REGISTRY if n not in BUILTIN_BACKENDS)
    return list(BUILTIN_BACKENDS) + extras


def backend_status() -> List[Tuple[str, bool, str]]:
    """(name, available, description-or-reason) for every backend."""
    _ensure_builtins()
    rows = []
    for name in available_backends():
        backend = _REGISTRY[name]
        ok = backend.available()
        note = backend.description if ok else (
            backend.unavailable_reason() or "unavailable"
        )
        rows.append((name, ok, note))
    return rows
