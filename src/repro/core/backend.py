"""Pluggable array-execution backends for the tensorized DSE paths.

PR 3 vectorized the inner EA population scoring with numpy; the grid
evaluator of :mod:`repro.core.grid_eval` applies the same
flatten-to-tensor move to the *outer* (design point x WtDup x ResDAC)
task walk. Both paths are pure array arithmetic, so the concrete array
engine is an execution detail — exactly like the device technology is a
content detail — and this module gives it the same shape as
:mod:`repro.hardware.tech`: a named, validated registry of
:class:`ArrayBackend` objects, selected by ``SynthesisConfig.backend``
(``--backend`` on the CLI).

Three backends ship built in:

``numpy``
    The default: vectorized ``(tasks, layers)`` operations, layer
    reductions accumulated in layer order so every value is
    bit-identical to the scalar oracle.
``python``
    Scalar loops over the same arrays, in exactly the scalar oracle's
    operation order — the conformance reference every other backend
    (including third-party registrations) is compared against. When
    numpy itself is absent the executor skips grid evaluation entirely
    and walks tasks one at a time, as before PR 6.
``numba``
    The ``python`` loop kernels JIT-compiled with ``numba.njit``
    (``fastmath`` off, so IEEE-754 evaluation order — and therefore
    bit-identity — is preserved). Registered unconditionally but only
    *available* when numba is importable; selecting it without numba
    installed raises a :class:`~repro.errors.ConfigurationError` naming
    the missing dependency.

Exactness contract
------------------
Every backend must return bit-identical results for the op-level
primitives (``ordered_sum``, ``ordered_max``, ``prune_mask``) and the
fused :meth:`ArrayBackend.compute_bounds` kernel — *not* merely close:
the DSE pruning decisions ride on exact float comparisons, and the
whole point of the tensorized walk is that it cannot change a solution.
``tests/test_backend_conformance.py`` pins this contract for every
registered backend.

Content-key contract
--------------------
A backend changes *how fast* the task walk runs, never *what* it
returns, so ``backend`` (and the ``grid_eval`` switch) live in
:data:`repro.core.executor.EXECUTION_ONLY_FIELDS` and are excluded from
every content fingerprint — eval memos, serve job keys and store
entries are shared across backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

try:  # numpy is optional at this layer (the ``python`` backend runs
    import numpy as _np  # without it); the image bakes it in.
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None


def numpy_module():
    """The numpy module, or None — the single gate every tensorized
    path (batch_eval, grid_eval, the backends) consults."""
    return _np


def numpy_available() -> bool:
    """True when the vectorized engines can run on this interpreter."""
    return _np is not None


# ----------------------------------------------------------------------
# The task-grid input contract
# ----------------------------------------------------------------------
@dataclass
class TaskGrid:
    """The tensorized task walk's input: one row per DSE task.

    All 2-D arrays are ``(tasks, layers)`` int64/float64; 1-D arrays are
    per-task or per-layer as noted. Integer arrays hold exact values
    (every product taken inside the kernels stays far below 2**53, so
    int -> float conversions are exact and match the scalar oracle's
    arbitrary-precision arithmetic bit for bit).
    """

    total_blocks: "object"  # (T, L) int64 — ceil(out_positions / WtDup)
    inputs_per_block: "object"  # (T, L) int64 — WtDup * rows
    outputs_per_block: "object"  # (T, L) int64 — WtDup * cols
    group_cap: "object"  # (T, L) int64 — min(WtDup*row_tiles, crossbars)
    crossbars: "object"  # (T, L) int64 — WtDup * set_size
    conversions_per_block_bit: "object"  # (T, L) int64
    bits: "object"  # (T,) int64 — ceil(PrecAct / ResDAC)
    adc_power: "object"  # (T, L) float64 — ADC power at required res.
    vector_ops: "object"  # (L,) float64 — ALU-only workload per layer
    per_crossbar_fixed: "object"  # (T,) float64 — XbSize*(DAC+S&H)
    peripheral_power: "object"  # (T,) float64 — (1-RatioRram)*TotalPower
    crossbar_latency: float
    act_bytes: float
    edram_bandwidth: float
    per_macro_fixed: float  # eDRAM + NoC + register power per macro
    adc_sample_rate: float
    alu_power: float
    alu_frequency: float
    min_macros: int  # ceil(L/2) under rule-b sharing, L otherwise
    macro_sharing: bool  # halves the ADC denominator (rule b)

    @property
    def num_tasks(self) -> int:
        return len(self.bits)

    @property
    def num_layers(self) -> int:
        return len(self.vector_ops)


def _bound_loops(
    total_blocks, inputs_per_block, outputs_per_block, group_cap,
    crossbars, conversions_per_block_bit, bits, adc_power, vector_ops,
    per_crossbar_fixed, peripheral_power, crossbar_latency, act_bytes,
    edram_bandwidth, per_macro_fixed, adc_sample_rate, alu_power,
    alu_frequency, min_macros, macro_sharing, out,
):
    """Scalar-loop bound kernel (the ``python`` and ``numba`` engine).

    Replicates :func:`repro.core.evaluator.throughput_upper_bound` one
    task at a time, in the exact operation order of the scalar code —
    this function is deliberately numba-``njit``-compatible (flat loops,
    no Python containers), so the JIT backend compiles it unchanged.
    """
    num_tasks, num_layers = total_blocks.shape
    for t in range(num_tasks):
        # Rule c's largest permitted macro group bounds eDRAM bandwidth.
        max_group = group_cap[t, 0]
        for l in range(1, num_layers):
            if group_cap[t, l] > max_group:
                max_group = group_cap[t, l]
        if max_group < 1:
            max_group = 1
        bandwidth = edram_bandwidth * max_group

        # Structural floor: exact MVM time, best-case load/store.
        period_floor = 0.0
        for l in range(num_layers):
            mvm = (total_blocks[t, l] * bits[t]) * crossbar_latency
            load = (
                (total_blocks[t, l] * inputs_per_block[t, l]) * act_bytes
            ) / bandwidth
            store = (
                (total_blocks[t, l] * outputs_per_block[t, l]) * act_bytes
            ) / bandwidth
            stage = mvm
            if load > stage:
                stage = load
            if store > stage:
                stage = store
            if stage > period_floor:
                period_floor = stage

        # Fixed-overhead floor (fewest macros any partition can use).
        total_crossbars = 0
        for l in range(num_layers):
            total_crossbars += crossbars[t, l]
        fixed = (
            min_macros * per_macro_fixed
            + total_crossbars * per_crossbar_fixed[t]
        )
        available = peripheral_power[t] - fixed
        if available <= 0:
            out[t] = 0.0
            continue

        # Eq. 6 power floor: holding every delay at D costs denom / D.
        adc_denom = 0.0
        alu_denom = 0.0
        for l in range(num_layers):
            conversions = (
                total_blocks[t, l] * bits[t]
            ) * conversions_per_block_bit[t, l]
            adc_wl = float(conversions)
            alu_wl = float(conversions) + vector_ops[l]
            adc_denom = adc_denom + (
                adc_power[t, l] * adc_wl / adc_sample_rate
            )
            alu_denom = alu_denom + (
                alu_power * alu_wl / alu_frequency
            )
        if macro_sharing:
            adc_denom = adc_denom / 2.0
        power_floor = (adc_denom + alu_denom) / available
        if power_floor > period_floor:
            period_floor = power_floor
        if period_floor <= 0:
            out[t] = math.inf
        else:
            out[t] = 1.0 / period_floor
    return out


# ----------------------------------------------------------------------
# Backend interface + built-in engines
# ----------------------------------------------------------------------
class ArrayBackend:
    """One array-execution engine for the tensorized task walk.

    Subclasses implement the op-level primitives and the fused bound
    kernel; the registry hands out one shared instance per name.
    ``available()`` gates optional dependencies — an unavailable
    backend stays listed (with its reason) but cannot be selected.
    """

    #: Registry key; subclasses must override with a non-empty name.
    name: str = ""
    description: str = ""

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can execute on this interpreter."""
        return True

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        """Human-readable reason when :meth:`available` is False."""
        return None

    # -- op-level primitives (conformance-tested per backend) ----------
    def ordered_sum(self, terms) -> "object":
        """Left-to-right sum over axis 1 of a ``(T, L)`` array.

        Matches the scalar oracle's ordered Python ``sum`` — *not*
        numpy's pairwise ``np.sum``, which can differ in the last ulp.
        """
        raise NotImplementedError

    def ordered_max(self, terms) -> "object":
        """Maximum over axis 1 of a ``(T, L)`` array."""
        raise NotImplementedError

    def prune_mask(
        self, bounds, positions, incumbent_fitness: float,
        incumbent_index: int,
    ) -> "object":
        """Dominated-task mask over ``positions`` (task indices).

        True where the task provably cannot beat the incumbent: its
        bound is below the incumbent's fitness, or ties it with a
        larger task index (the executor's exact tie-break rule).
        """
        raise NotImplementedError

    def compute_bounds(self, grid: TaskGrid) -> "object":
        """Per-task throughput upper bounds for a whole task grid.

        Must be bit-identical to calling :func:`repro.core.evaluator.
        throughput_upper_bound` once per task.
        """
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """Vectorized ``(tasks, layers)`` evaluation (the default)."""

    name = "numpy"
    description = "vectorized numpy engine (default)"

    @classmethod
    def available(cls) -> bool:
        return _np is not None

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        if _np is None:  # pragma: no cover - the image bakes numpy in
            return "numpy is not importable on this interpreter"
        return None

    def ordered_sum(self, terms):
        np = _np
        terms = np.asarray(terms, dtype=np.float64)
        acc = np.zeros(terms.shape[0], dtype=np.float64)
        for l in range(terms.shape[1]):  # layer order == scalar order
            acc = acc + terms[:, l]
        return acc

    def ordered_max(self, terms):
        np = _np
        terms = np.asarray(terms, dtype=np.float64)
        acc = terms[:, 0].copy()
        for l in range(1, terms.shape[1]):
            acc = np.maximum(acc, terms[:, l])
        return acc

    def prune_mask(
        self, bounds, positions, incumbent_fitness, incumbent_index
    ):
        np = _np
        bounds = np.asarray(bounds, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.int64)
        values = bounds[positions]
        return (values < incumbent_fitness) | (
            (values == incumbent_fitness)
            & (positions > incumbent_index)
        )

    def compute_bounds(self, grid: TaskGrid):
        np = _np
        with np.errstate(all="ignore"):
            # Structural floor. Operation order mirrors the scalar
            # PerformanceEvaluator helpers: (blocks * bits) * latency,
            # ((blocks * per_block) * act_bytes) / bandwidth.
            max_group = np.maximum(1, self.ordered_max(grid.group_cap))
            bandwidth = grid.edram_bandwidth * max_group
            mvm = (
                grid.total_blocks * grid.bits[:, None]
            ) * grid.crossbar_latency
            load = (
                (grid.total_blocks * grid.inputs_per_block)
                * grid.act_bytes
            ) / bandwidth[:, None]
            store = (
                (grid.total_blocks * grid.outputs_per_block)
                * grid.act_bytes
            ) / bandwidth[:, None]
            stage = np.maximum(np.maximum(mvm, load), store)
            period_floor = self.ordered_max(stage)

            # Fixed-overhead floor (integer sums are exact in any order).
            total_crossbars = grid.crossbars.sum(axis=1)
            fixed = (
                grid.min_macros * grid.per_macro_fixed
                + total_crossbars * grid.per_crossbar_fixed
            )
            available = grid.peripheral_power - fixed

            # Eq. 6 power floor with the rule-b sharing halving.
            conversions = (
                grid.total_blocks * grid.bits[:, None]
            ) * grid.conversions_per_block_bit
            adc_wl = conversions.astype(np.float64)
            alu_wl = adc_wl + grid.vector_ops[None, :]
            adc_denom = self.ordered_sum(
                grid.adc_power * adc_wl / grid.adc_sample_rate
            )
            alu_denom = self.ordered_sum(
                grid.alu_power * alu_wl / grid.alu_frequency
            )
            if grid.macro_sharing:
                adc_denom = adc_denom / 2.0
            period = np.maximum(
                period_floor, (adc_denom + alu_denom) / available
            )
            return np.where(
                available <= 0,
                0.0,
                np.where(period <= 0, np.inf, 1.0 / period),
            )


class PythonBackend(ArrayBackend):
    """Dependency-free scalar loops — the conformance reference."""

    name = "python"
    description = "pure-Python loop engine (reference / fallback)"

    @staticmethod
    def _rows(terms) -> List[Sequence[float]]:
        return [list(row) for row in terms]

    def ordered_sum(self, terms):
        out = []
        for row in self._rows(terms):
            acc = 0.0
            for value in row:
                acc = acc + float(value)
            out.append(acc)
        return out

    def ordered_max(self, terms):
        out = []
        for row in self._rows(terms):
            acc = float(row[0])
            for value in row[1:]:
                value = float(value)
                if value > acc:
                    acc = value
            out.append(acc)
        return out

    def prune_mask(
        self, bounds, positions, incumbent_fitness, incumbent_index
    ):
        values = [float(bounds[int(p)]) for p in positions]
        return [
            value < incumbent_fitness
            or (
                value == incumbent_fitness
                and int(position) > incumbent_index
            )
            for value, position in zip(values, positions)
        ]

    def _kernel(self):
        """The loop kernel to run (hook the JIT backend overrides)."""
        return _bound_loops

    def compute_bounds(self, grid: TaskGrid):
        if _np is None:  # pragma: no cover - grid assembly needs numpy
            raise ConfigurationError(
                "grid evaluation requires numpy (the TaskGrid arrays "
                "are numpy even for the loop backends)"
            )
        out = _np.zeros(grid.num_tasks, dtype=_np.float64)
        return self._kernel()(
            grid.total_blocks, grid.inputs_per_block,
            grid.outputs_per_block, grid.group_cap, grid.crossbars,
            grid.conversions_per_block_bit, grid.bits, grid.adc_power,
            grid.vector_ops, grid.per_crossbar_fixed,
            grid.peripheral_power, grid.crossbar_latency,
            grid.act_bytes, grid.edram_bandwidth, grid.per_macro_fixed,
            grid.adc_sample_rate, grid.alu_power, grid.alu_frequency,
            grid.min_macros, grid.macro_sharing, out,
        )


class NumbaBackend(PythonBackend):
    """The loop kernel JIT-compiled with ``numba.njit`` (IEEE-strict).

    ``fastmath`` stays off: reassociation would break the bit-identity
    contract that makes the tensorized walk safe. The compiled kernel
    is cached on the class after the first call.
    """

    name = "numba"
    description = "numba-JIT loop engine (optional dependency)"
    _compiled = None

    @classmethod
    def available(cls) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return _np is not None

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        if not cls.available():
            return (
                "numba is not importable on this interpreter "
                "(install numba to enable the JIT backend)"
            )
        return None  # pragma: no cover - numba present

    def _kernel(self):  # pragma: no cover - needs numba installed
        if NumbaBackend._compiled is None:
            import numba

            NumbaBackend._compiled = numba.njit(
                cache=False, fastmath=False
            )(_bound_loops)
        return NumbaBackend._compiled


# ----------------------------------------------------------------------
# Registry (mirrors repro.hardware.tech)
# ----------------------------------------------------------------------
#: Names whose engines are defined by this module and cannot be
#: replaced with different implementations.
BUILTIN_BACKENDS: Tuple[str, ...] = ("numpy", "python", "numba")

#: The backend every config selects unless told otherwise.
DEFAULT_BACKEND = "numpy"

_REGISTRY: Dict[str, ArrayBackend] = {}


def _ensure_builtins() -> None:
    if not _REGISTRY:
        for backend_cls in (NumpyBackend, PythonBackend, NumbaBackend):
            _REGISTRY[backend_cls.name] = backend_cls()


def register_backend(
    backend: ArrayBackend, replace: bool = False
) -> ArrayBackend:
    """Add a backend instance to the registry.

    Re-registering an existing name requires ``replace=True``; the
    built-in names can never be rebound to a different class (the
    conformance suite and the CLI docs are defined against them) —
    re-registering an instance of the *same* class is a no-op success.
    """
    _ensure_builtins()
    if not isinstance(backend, ArrayBackend):
        raise ConfigurationError(
            f"expected an ArrayBackend, got {type(backend).__name__}"
        )
    if not backend.name or not isinstance(backend.name, str):
        raise ConfigurationError(
            "backend name must be a non-empty string"
        )
    existing = _REGISTRY.get(backend.name)
    if backend.name in BUILTIN_BACKENDS:
        if type(existing) is not type(backend):
            raise ConfigurationError(
                f"the built-in {backend.name!r} backend cannot be "
                "replaced; register the engine under a new name"
            )
        return existing
    if existing is not None and not replace:
        raise ConfigurationError(
            f"backend {backend.name!r} is already registered "
            "(pass replace=True to update it)"
        )
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a user-registered backend (built-ins cannot be removed)."""
    _ensure_builtins()
    if name in BUILTIN_BACKENDS:
        raise ConfigurationError(
            f"the built-in {name!r} backend cannot be unregistered"
        )
    _REGISTRY.pop(name, None)


def get_backend(name: str = DEFAULT_BACKEND) -> ArrayBackend:
    """Look up an *available* backend by name.

    Unknown names and registered-but-unavailable backends (e.g.
    ``numba`` without numba installed) both raise
    :class:`~repro.errors.ConfigurationError` with an actionable
    message — configs fail fast at construction, not mid-walk.
    """
    _ensure_builtins()
    if isinstance(name, ArrayBackend):
        return name
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: "
            f"{available_backends()}"
        ) from None
    if not backend.available():
        raise ConfigurationError(
            f"backend {name!r} is unavailable: "
            f"{backend.unavailable_reason()}"
        )
    return backend


def available_backends() -> List[str]:
    """Registered backend names, built-ins first, extras sorted."""
    _ensure_builtins()
    extras = sorted(n for n in _REGISTRY if n not in BUILTIN_BACKENDS)
    return list(BUILTIN_BACKENDS) + extras


def backend_status() -> List[Tuple[str, bool, str]]:
    """(name, available, description-or-reason) for every backend."""
    _ensure_builtins()
    rows = []
    for name in available_backends():
        backend = _REGISTRY[name]
        ok = backend.available()
        note = backend.description if ok else (
            backend.unavailable_reason() or "unavailable"
        )
        rows.append((name, ok, note))
    return rows
