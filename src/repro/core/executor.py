"""Parallel, cached execution engine for the Alg. 1 design-space walk.

The multi-loop DSE of :mod:`repro.core.synthesizer` is embarrassingly
parallel once flattened: every ``(outer point, WtDup, ResDAC)`` triple is
an independent EA launch whose outcome depends only on the model, the
config, and the master seed (all RNGs are label-derived, never shared).
This module turns the nested loops into that flat work queue and runs it
through a pluggable executor:

- :class:`SerialExecutor` evaluates tasks in-process (``jobs=1``);
- :class:`ProcessExecutor` fans them out over a ``multiprocessing`` pool
  (``jobs>1``), each worker holding its own :class:`_TaskRunner`.

Three properties make the engine safe to parallelize and to accelerate:

1. **Determinism** — task RNGs are spawned from the master seed by a
   content label, so a task's outcome is identical no matter which
   worker runs it or in which order. The winner is selected by
   ``(max fitness, min task index)``, an order-free rule.
2. **Sound pruning** — before a task's EA launches, its analytical
   throughput upper bound (:func:`repro.core.evaluator.
   throughput_upper_bound`) is compared against the incumbent; tasks
   that provably cannot win are skipped. Tasks are evaluated in
   descending-bound order so a strong incumbent appears early.
3. **Content-keyed memoization** — :class:`EvaluationCache` stores EA
   fitness values under ``(model, hardware params, design point, gene)``
   fingerprints and is shared with :class:`repro.optim.evolution.
   EvolutionEngine`, so re-visited tuples never re-run the
   component-allocation stage (per process; workers keep local caches).
4. **Batched population scoring** — every explorer a runner builds
   inherits ``config.batch_eval``, so each EA launch scores whole
   generations through the numpy engine of
   :mod:`repro.core.batch_eval`. The engine is bit-identical to the
   scalar oracle, which is why ``batch_eval`` sits in
   :data:`EXECUTION_ONLY_FIELDS`; serial and multiprocessing paths both
   benefit because the batching happens inside the worker-side runner.
5. **Tensorized task bounds** — the pruning bounds of property 2 are
   computed for the *whole* queue in one ``(tasks, layers)`` pass
   through :mod:`repro.core.grid_eval` (``config.grid_eval``), on the
   array backend named by ``config.backend``, and dominated tasks are
   masked vectorized per wave. Bit-identical to bounding each task
   through its own spec, so ``grid_eval`` and ``backend`` also sit in
   :data:`EXECUTION_ONLY_FIELDS`.

Every future scaling direction (sharding the queue across hosts, async
backends, multi-accelerator evaluation) plugs in behind the same
executor protocol.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dc_field, fields
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.archive import DesignArchive
    from repro.core.synthesizer import SynthesisReport

from repro.core.config import SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.design_space import DesignPoint, DesignSpace
from repro.core.evaluator import throughput_upper_bound
from repro.core.macro_partition import MacroPartition, MacroPartitionExplorer
from repro.core.pareto import ParetoPoint, ParetoSolutionSet, merge_fronts
from repro.core.solution import SynthesisSolution
from repro.core.weight_duplication import WeightDuplicationFilter
from repro.errors import InfeasibleError, SynthesisInterrupted
from repro.hardware.params import HardwareParams
from repro.hardware.tech import DEFAULT_TECHNOLOGY
from repro.hardware.power import PowerBudget
from repro.nn.model import CNNModel
from repro.utils.rng import SeedSequence

ProgressCallback = Callable[[str], None]
CandidatesOfPoint = Callable[[DesignPoint], Sequence[Tuple[int, ...]]]


# ----------------------------------------------------------------------
# Content fingerprints (cache keys must survive process boundaries)
# ----------------------------------------------------------------------
def model_fingerprint(model: CNNModel) -> str:
    """Stable digest of everything that affects an evaluation's result."""
    text = "|".join((
        model.name,
        repr(model.input_shape),
        str(model.act_precision),
        str(model.weight_precision),
        repr(model.layers),
    ))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def params_fingerprint(params: HardwareParams) -> str:
    """Stable digest of the hardware setup parameters.

    The ``technology`` provenance stamp is skipped when it names the
    default profile: every pre-profile artifact (eval memos, serve
    store entries) was keyed without it, and the default profile is
    byte-identical to the historical constants — so ``reram`` keys
    stay valid. Any *other* technology name is digested, which keeps
    two same-constants profiles (e.g. a registered copy of ``reram``
    under a new name) from ever sharing cache entries.
    """
    text = "|".join(
        f"{f.name}={getattr(params, f.name)!r}"
        for f in fields(params)
        if not (f.name == "technology"
                and getattr(params, f.name) == DEFAULT_TECHNOLOGY)
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


#: Config fields that steer *how* the DSE runs, never *what* it returns
#: (serial and parallel runs are identical by contract, pruning is
#: sound, the memo only skips re-computation, and the batched evaluator
#: reproduces the scalar oracle's arithmetic bit for bit). They are
#: excluded from content keys so a request replayed with different
#: execution knobs still maps to the same stored result.
#: ``grid_eval`` and ``backend`` join the set in PR 6: the tensorized
#: outer walk and every registered array backend are bit-identical to
#: the per-task scalar walk by contract (pinned by the grid-eval
#: differential and backend conformance suites), so neither can change
#: a result — only how fast it is computed. PR 9 extends ``backend``'s
#: reach to the batched population scoring (EA/NSGA/SA hot path)
#: under the same contract: exact engines are ``==``-identical, GPU
#: engines are tolerance-bounded with winners re-scored on the scalar
#: oracle, so the stored result still cannot move.
#: ``sa_proposal_batch`` is deliberately *not* here: rounds larger than
#: one change the SA walk (see :class:`repro.optim.annealing.
#: SimulatedAnnealer`), so it is result content.
EXECUTION_ONLY_FIELDS = frozenset(
    {"jobs", "prune_dominated", "share_eval_cache", "batch_eval",
     "grid_eval", "backend", "sim_engine"}
)


def config_fingerprint(config: SynthesisConfig) -> str:
    """Stable digest of every config field that can change the result.

    Hardware parameters are excluded here — combine with
    :func:`params_fingerprint` (the serve layer's job keys do exactly
    that), keeping the keying scheme identical to the executor memo's.
    """
    text = "|".join(
        f"{f.name}={getattr(config, f.name)!r}"
        for f in fields(config)
        if f.name not in EXECUTION_ONLY_FIELDS and f.name != "params"
        # The default technology is skipped for key stability (it is
        # byte-identical to the pre-profile constants; see
        # params_fingerprint) — any other profile name is result
        # content and is digested.
        and not (f.name == "tech"
                 and getattr(config, f.name) == DEFAULT_TECHNOLOGY)
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Memo persistence (cache entries must survive a JSON round trip)
# ----------------------------------------------------------------------
def _encode_term(value):
    """Tuple-of-scalars -> JSON-safe nested lists (recursively)."""
    if isinstance(value, tuple):
        return [_encode_term(v) for v in value]
    return value


def _decode_term(value):
    """Inverse of :func:`_encode_term` — lists back to hashable tuples."""
    if isinstance(value, list):
        return tuple(_decode_term(v) for v in value)
    return value


def encode_memo_entries(
    entries: Iterable[Tuple[Hashable, float]]
) -> List[List]:
    """Serialize memo ``(key, value)`` pairs for JSON storage.

    Values are scalar fitness floats (the EA memo) or objective-vector
    tuples (the pareto memo); both survive the JSON round trip.
    """
    return [
        [_encode_term(key), _encode_term(value)]
        for key, value in entries
    ]


def decode_memo_entries(
    payload: Iterable[Sequence],
) -> List[Tuple[Hashable, float]]:
    """Parse entries written by :func:`encode_memo_entries`."""
    entries = []
    for raw_key, raw_value in payload:
        value = _decode_term(raw_value)
        if isinstance(value, tuple):
            value = tuple(float(v) for v in value)
        else:
            value = float(value)
        entries.append((_decode_term(raw_key), value))
    return entries


class EvaluationCache:
    """Content-keyed memo for EA fitness evaluations.

    A thin mapping with hit/miss accounting. One instance is shared by
    every :class:`MacroPartitionExplorer` a runner creates, keyed by
    ``(context, gene)`` where the context fingerprints the (model,
    hardware params, design point, WtDup, ResDAC) tuple — so identical
    evaluations are recognized across EA runs, not just within one.
    """

    __slots__ = ("_store", "hits", "misses")

    def __init__(self) -> None:
        self._store: Dict[Hashable, float] = {}
        self.hits = 0
        self.misses = 0

    def __contains__(self, key: Hashable) -> bool:
        found = key in self._store
        if found:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def __getitem__(self, key: Hashable) -> float:
        return self._store[key]

    def __setitem__(self, key: Hashable, value: float) -> None:
        self._store[key] = value

    def __len__(self) -> int:
        return len(self._store)

    def preload(self, key: Hashable, value: float) -> None:
        """Insert a known fitness without touching the hit/miss stats.

        Used to warm-start a run from a persisted memo (the serve
        layer's result store) — first-insertion wins so a live entry is
        never clobbered by stale data.
        """
        self._store.setdefault(key, value)

    def items(self) -> List[Tuple[Hashable, float]]:
        """Snapshot of every memoized ``(key, fitness)`` pair."""
        return list(self._store.items())


# ----------------------------------------------------------------------
# The flat work queue
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationTask:
    """One EA launch: an outer design point x WtDup vector x ResDAC.

    ``index`` is the task's position in Alg. 1's original loop
    enumeration; it is the deterministic tie-breaker for equal-fitness
    winners and keys every aggregation, so evaluation order is free.
    """

    index: int
    point: DesignPoint
    wt_dup: Tuple[int, ...]
    res_dac: int

    @property
    def seed_label(self) -> str:
        """RNG label — identical to the serial driver's historic label."""
        return f"ea:{self.point.describe()}:{self.wt_dup}:{self.res_dac}"

    @property
    def pareto_seed_label(self) -> str:
        """RNG label of this task's NSGA-II launch (pareto mode) —
        disjoint from the EA's so both searches stay independent and
        order-free."""
        return (
            f"nsga:{self.point.describe()}:{self.wt_dup}:{self.res_dac}"
        )

    def context_key(self, model_key: str, params_key: str) -> Hashable:
        """Cache context identifying this task's evaluation function."""
        return (
            model_key, params_key,
            self.point.ratio_rram, self.point.res_rram,
            self.point.xb_size, self.point.num_crossbars,
            self.wt_dup, self.res_dac,
        )


@dataclass(frozen=True)
class ParetoTaskItem:
    """One NSGA-II launch: a task, the objective set, and an optional
    warm-start gene (the task's scalar-EA winner, when phase 1 found
    one) injected into the initial population so the front always
    contains a point at least as good in the first objective as the
    single-objective result."""

    task: EvaluationTask
    objectives: Tuple[str, ...]
    inject: Optional[Tuple[int, ...]] = None


@dataclass
class ParetoTaskOutcome:
    """A worker's report for one NSGA-II launch (IPC-small scalars)."""

    index: int
    points: List[ParetoPoint] = dc_field(default_factory=list)
    evaluations: int = 0
    cache_hits: int = 0


@dataclass
class TaskOutcome:
    """What a worker reports back for one task (kept IPC-small).

    The winning gene is re-scored in the parent to materialize the full
    :class:`SynthesisSolution`; losers only ever ship these scalars.
    """

    index: int
    feasible: bool = False
    fitness: float = 0.0
    gene: Optional[Tuple[int, ...]] = None
    throughput: float = 0.0
    power: float = 0.0
    tops_per_watt: float = 0.0
    latency: float = 0.0
    num_macros: int = 0
    ea_evaluations: int = 0  # memo misses: fitness calls actually run
    cache_hits: int = 0


# ----------------------------------------------------------------------
# Task evaluation (runs in the parent or in pool workers)
# ----------------------------------------------------------------------
class _TaskRunner:
    """Evaluates filter jobs and EA tasks for one (model, config) pair.

    Each worker process owns one runner; its :class:`EvaluationCache`
    persists across every task the worker handles.
    """

    def __init__(
        self,
        model: CNNModel,
        config: SynthesisConfig,
        warm_memo: Optional[
            Sequence[Tuple[Hashable, float]]
        ] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.seeds = SeedSequence(config.seed)
        self.cache: Optional[EvaluationCache] = (
            EvaluationCache() if config.share_eval_cache else None
        )
        if self.cache is not None and warm_memo:
            for key, value in warm_memo:
                self.cache.preload(key, value)
        self._model_key = model_fingerprint(model)
        self._params_key = params_fingerprint(config.params)

    def filter_candidates(
        self, point: DesignPoint
    ) -> Optional[List[Tuple[int, ...]]]:
        """Stage 1 (Alg. 1 line 6) for one point; None when infeasible."""
        try:
            filter_ = WeightDuplicationFilter(
                model=self.model,
                xb_size=point.xb_size,
                res_rram=point.res_rram,
                num_crossbars=point.num_crossbars,
                config=self.config,
            )
        except InfeasibleError:
            return None
        rng = self.seeds.spawn(f"sa:{point.describe()}")
        return [tuple(c) for c in filter_.top_candidates(rng)]

    def spec_and_budget(self, task: EvaluationTask):
        """The stage-2 spec and Eq. 3 budget a task evaluates under."""
        spec = make_spec(
            self.model, task.wt_dup,
            xb_size=task.point.xb_size,
            res_rram=task.point.res_rram,
            res_dac=task.res_dac,
            params=self.config.params,
            max_blocks_per_layer=self.config.max_blocks_per_layer,
        )
        budget = PowerBudget(
            total_power=self.config.total_power,
            ratio_rram=task.point.ratio_rram,
            xb_size=task.point.xb_size,
            res_rram=task.point.res_rram,
            num_crossbars=task.point.num_crossbars,
        )
        return spec, budget

    def make_explorer(self, task: EvaluationTask) -> MacroPartitionExplorer:
        """Build the stage-3 explorer for a task (shared by run/score).

        The explorer inherits ``config.batch_eval``, so every EA launch
        this worker runs scores whole populations through the numpy
        engine — the serial executor and each pool worker batch their
        task queues' evaluations identically.
        """
        spec, budget = self.spec_and_budget(task)
        return MacroPartitionExplorer(
            spec=spec, budget=budget, res_dac=task.res_dac,
            config=self.config, rng=self.seeds.spawn(task.seed_label),
            cache=self.cache,
            cache_context=task.context_key(
                self._model_key, self._params_key
            ),
            batch_eval=self.config.batch_eval,
        )

    def score_population(
        self, task: EvaluationTask, genes: Sequence[Tuple[int, ...]]
    ) -> List[float]:
        """Batch-score a gene population under a task's context.

        One vectorized pass over the whole queue of genes; values are
        identical to scoring each gene through the task's explorer.
        Used by analysis tooling and the differential test suite to
        probe a task's fitness landscape without launching its EA.
        """
        return self.make_explorer(task).score_population(genes)

    def run_pareto_task(self, item: ParetoTaskItem) -> ParetoTaskOutcome:
        """Run one NSGA-II launch; returns the task's local front.

        The engine shares the runner's evaluation memo under
        pareto-specific keys (the objective set joins the context), so
        scalar fitness floats and vector tuples never collide, while
        re-visited (design point, gene, objectives) evaluations are
        free. Front genes are re-scored through the scalar oracle to
        materialize full metrics — deterministic, and bit-identical to
        what the batched engine computed during the search.
        """
        import math

        from repro.optim.nsga import NSGA2Engine

        task = item.task
        objectives = item.objectives
        explorer = self.make_explorer(task)
        context = task.context_key(self._model_key, self._params_key)
        engine: NSGA2Engine = NSGA2Engine(
            objectives=lambda gene: explorer.score_objectives(
                gene, objectives
            ),
            mutations=[explorer.mutate_num, explorer.mutate_share],
            gene_key=lambda gene: gene,
            rng=self.seeds.spawn(task.pareto_seed_label),
            population_size=self.config.ea_population_size,
            offspring_per_gen=self.config.ea_offspring_per_gen,
            max_generations=self.config.ea_max_generations,
            cache=self.cache,
            cache_key=(
                (lambda gene: ("pareto", objectives, context, gene))
                if self.cache is not None else None
            ),
            batch_objectives=(
                (lambda genes: explorer.score_population_objectives(
                    genes, objectives
                ))
                if explorer.batch_eval else None
            ),
        )
        population = explorer.initial_population(
            self.config.ea_population_size
        )
        if item.inject is not None:
            population = [tuple(item.inject)] + population
        front = engine.run(population)

        outcome = ParetoTaskOutcome(
            index=task.index,
            evaluations=engine.report.evaluations,
            cache_hits=engine.report.cache_hits,
        )
        for gene, vector in front:
            if any(math.isinf(value) for value in vector):
                continue  # the all -inf sentinel: no feasible gene
            _fitness, allocation, result = explorer.score(gene)
            if allocation is None or result is None:
                continue  # pragma: no cover - finite vectors are feasible
            outcome.points.append(ParetoPoint(
                ratio_rram=task.point.ratio_rram,
                res_rram=task.point.res_rram,
                xb_size=task.point.xb_size,
                res_dac=task.res_dac,
                num_crossbars=task.point.num_crossbars,
                wt_dup=task.wt_dup,
                gene=tuple(gene),
                throughput=result.throughput,
                power=result.power,
                tops_per_watt=result.tops_per_watt,
                latency=result.latency,
                energy_per_image=result.energy_per_image,
                num_macros=MacroPartition.from_gene(gene).num_macros,
                task_index=task.index,
            ))
        return outcome

    def throughput_bound(self, task: EvaluationTask) -> float:
        """Analytical upper bound used for dominated-task pruning."""
        spec, budget = self.spec_and_budget(task)
        return throughput_upper_bound(
            spec, budget,
            enable_macro_sharing=self.config.enable_macro_sharing,
        )

    def run_task(self, task: EvaluationTask) -> TaskOutcome:
        """Run one EA launch end to end; never raises for infeasibility."""
        explorer = self.make_explorer(task)
        outcome = TaskOutcome(index=task.index)
        try:
            partition, _allocation, result = explorer.explore()
        except InfeasibleError:
            pass
        else:
            outcome.feasible = True
            outcome.fitness = result.fitness
            outcome.gene = partition.gene
            outcome.throughput = result.throughput
            outcome.power = result.power
            outcome.tops_per_watt = result.tops_per_watt
            outcome.latency = result.latency
            outcome.num_macros = partition.num_macros
        report = explorer.last_report
        if report is not None:
            outcome.ea_evaluations = report.evaluations
            outcome.cache_hits = report.cache_hits
        return outcome


# ----------------------------------------------------------------------
# Pluggable executors
# ----------------------------------------------------------------------
class SerialExecutor:
    """In-process task evaluation (``jobs=1``) with one shared cache."""

    jobs = 1

    def __init__(
        self,
        model: CNNModel,
        config: SynthesisConfig,
        warm_memo: Optional[
            Sequence[Tuple[Hashable, float]]
        ] = None,
    ) -> None:
        self.runner = _TaskRunner(model, config, warm_memo=warm_memo)

    def map_filters(
        self, points: Sequence[DesignPoint]
    ) -> List[Optional[List[Tuple[int, ...]]]]:
        return [self.runner.filter_candidates(p) for p in points]

    def imap_tasks(
        self, tasks: Iterable[EvaluationTask]
    ) -> Iterator[TaskOutcome]:
        for task in tasks:
            yield self.runner.run_task(task)

    def imap_pareto(
        self, items: Iterable[ParetoTaskItem]
    ) -> Iterator[ParetoTaskOutcome]:
        for item in items:
            yield self.runner.run_pareto_task(item)

    def terminate(self) -> None:
        pass

    def close(self) -> None:
        pass


_WORKER_RUNNER: Optional[_TaskRunner] = None


def _worker_init(
    model: CNNModel,
    config: SynthesisConfig,
    warm_memo: Optional[Sequence[Tuple[Hashable, float]]] = None,
) -> None:
    # Ctrl-C is the parent's business: it terminates the pool and
    # persists the partial memo. Workers ignoring SIGINT is what keeps
    # an interrupt from spraying one KeyboardInterrupt traceback per
    # worker over the clean shutdown message.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    global _WORKER_RUNNER
    _WORKER_RUNNER = _TaskRunner(model, config, warm_memo=warm_memo)


def _worker_filter(
    point: DesignPoint,
) -> Optional[List[Tuple[int, ...]]]:
    assert _WORKER_RUNNER is not None
    return _WORKER_RUNNER.filter_candidates(point)


def _worker_task(task: EvaluationTask) -> TaskOutcome:
    assert _WORKER_RUNNER is not None
    return _WORKER_RUNNER.run_task(task)


def _worker_pareto(item: ParetoTaskItem) -> ParetoTaskOutcome:
    assert _WORKER_RUNNER is not None
    return _WORKER_RUNNER.run_pareto_task(item)


class ProcessExecutor:
    """``multiprocessing.Pool`` fan-out (``jobs>1``).

    Workers are primed once with (model, config) through the pool
    initializer; tasks cross the process boundary as small frozen
    dataclasses and come back as :class:`TaskOutcome` scalars, so IPC
    stays negligible next to an EA launch. Results are consumed with
    ``imap`` in submission order, preserving deterministic aggregation.
    """

    def __init__(
        self,
        model: CNNModel,
        config: SynthesisConfig,
        jobs: int,
        warm_memo: Optional[
            Sequence[Tuple[Hashable, float]]
        ] = None,
    ) -> None:
        import multiprocessing

        self.jobs = jobs
        self._terminated = False
        self._pool = multiprocessing.Pool(
            processes=jobs,
            initializer=_worker_init,
            initargs=(model, config, warm_memo),
        )

    def map_filters(
        self, points: Sequence[DesignPoint]
    ) -> List[Optional[List[Tuple[int, ...]]]]:
        return self._pool.map(_worker_filter, points)

    def imap_tasks(
        self, tasks: Iterable[EvaluationTask]
    ) -> Iterator[TaskOutcome]:
        return self._pool.imap(_worker_task, tasks)

    def imap_pareto(
        self, items: Iterable[ParetoTaskItem]
    ) -> Iterator[ParetoTaskOutcome]:
        return self._pool.imap(_worker_pareto, items)

    def terminate(self) -> None:
        """Stop workers immediately (Ctrl-C path) — no zombie processes."""
        if not self._terminated:
            self._terminated = True
            self._pool.terminate()
            self._pool.join()

    def close(self) -> None:
        if not self._terminated:
            self._pool.close()
            self._pool.join()


# ----------------------------------------------------------------------
# The exploration engine (Alg. 1, flattened)
# ----------------------------------------------------------------------
class ExplorationEngine:
    """Drives the flat task queue: enumerate, bound, prune, evaluate.

    Owns everything between :class:`DesignSpace` enumeration and the
    winning :class:`SynthesisSolution`; :class:`repro.core.synthesizer.
    Pimsyn` is a thin façade over it. Telemetry lands in the caller's
    :class:`SynthesisReport`.
    """

    def __init__(
        self,
        model: CNNModel,
        config: SynthesisConfig,
        report: "SynthesisReport",
        progress: Optional[ProgressCallback] = None,
        archive: Optional["DesignArchive"] = None,
        warm_memo: Optional[
            Sequence[Tuple[Hashable, float]]
        ] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.report = report
        self.progress = progress
        self.archive = archive
        self._warm_memo = list(warm_memo) if warm_memo else None
        self._local_runner = _TaskRunner(
            model, config, warm_memo=self._warm_memo
        )
        self._serial_runner: Optional[_TaskRunner] = None
        self._grid_evaluator = None  # lazy GridBoundEvaluator

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _make_executor(self):
        jobs = self.config.resolved_jobs
        self.report.jobs = jobs
        if jobs <= 1:
            executor = SerialExecutor(
                self.model, self.config, warm_memo=self._warm_memo
            )
            self._serial_runner = executor.runner
            return executor
        return ProcessExecutor(
            self.model, self.config, jobs, warm_memo=self._warm_memo
        )

    def memo_snapshot(self) -> List[Tuple[Hashable, float]]:
        """Every memo entry this engine holds in-process.

        Merges the local runner's cache (bounds, winner re-scoring, the
        per-winner fitness folded in by :meth:`_absorb`) with the serial
        executor's, when one ran. Pool workers keep private caches that
        die with the pool — a ``jobs=1`` run is the high-fidelity memo
        donor; parallel runs still contribute every winning gene.
        """
        merged: Dict[Hashable, float] = {}
        for runner in (self._local_runner, self._serial_runner):
            if runner is not None and runner.cache is not None:
                merged.update(runner.cache.items())
        return list(merged.items())

    # ------------------------------------------------------------------
    # Queue construction
    # ------------------------------------------------------------------
    def _build_tasks(
        self,
        executor,
        points: Sequence[DesignPoint],
        candidates_of_point: Optional[CandidatesOfPoint],
    ) -> List[EvaluationTask]:
        if candidates_of_point is not None:
            candidate_lists: List[Optional[List[Tuple[int, ...]]]] = [
                [tuple(int(d) for d in c) for c in candidates_of_point(p)]
                for p in points
            ]
        else:
            candidate_lists = executor.map_filters(points)

        tasks: List[EvaluationTask] = []
        for point, candidates in zip(points, candidate_lists):
            self.report.outer_points += 1
            self._log(f"exploring {point.describe()}")
            if candidates is None:
                self.report.infeasible_points += 1
                continue
            for wt_dup in candidates:
                self.report.candidates_tried += 1
                for res_dac in self.config.res_dac_choices:
                    tasks.append(EvaluationTask(
                        index=len(tasks), point=point,
                        wt_dup=tuple(wt_dup), res_dac=res_dac,
                    ))
        return tasks

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        candidates_of_point: Optional[CandidatesOfPoint] = None,
    ) -> Optional[SynthesisSolution]:
        """Explore the space; return the best solution or None.

        ``candidates_of_point`` overrides stage 1 with a fixed
        duplication policy (the Fig. 7 ablation hook); by default the
        SA filter supplies each point's WtDup candidates.
        """
        space = DesignSpace(self.model, self.config)
        points = list(space.outer_points())
        if not points:
            return None

        executor = self._make_executor()
        try:
            tasks = self._build_tasks(
                executor, points, candidates_of_point
            )
            if not tasks:
                return None
            incumbent = self._evaluate_queue(executor, tasks)
        except KeyboardInterrupt:
            # Ctrl-C / SIGTERM: tear the pool down cleanly (no orphaned
            # workers, no multiprocessing traceback storm) and hand the
            # partial memo to the caller so it can be persisted — a
            # resubmitted job then resumes the landscape, not restarts.
            executor.terminate()
            self.report.interrupted = True
            raise SynthesisInterrupted(
                f"synthesis of {self.model.name} interrupted after "
                f"{self.report.ea_runs} EA runs; worker pool shut down "
                "cleanly",
                partial_memo=self.memo_snapshot(),
            ) from None
        finally:
            executor.close()
        if incumbent is None:
            return None
        return self._materialize(tasks[incumbent.index], incumbent)

    def run_pareto(
        self,
        objectives: Optional[Sequence[str]] = None,
    ) -> Optional[ParetoSolutionSet]:
        """Multi-objective exploration: one global Pareto front.

        Two phases over the same flat task queue:

        1. the scalar EA of :meth:`run`, un-pruned so every task's
           winner gene is known deterministically (pruning cannot
           change the *best* solution, but it can change which losers
           get evaluated — and pareto mode needs them all);
        2. one NSGA-II launch per task (same executor fan-out, RNG
           labels disjoint from the EA's), warm-started with the
           task's phase-1 winner, producing a local front that the
           parent merges under the shared strict dominance into the
           global front.

        Returns None when no task produced a feasible point. The
        returned set's ``solution`` is the front's best point in the
        first objective, re-materialized in-process.
        """
        objectives = tuple(
            objectives if objectives is not None
            else self.config.objectives
        )
        space = DesignSpace(self.model, self.config)
        points = list(space.outer_points())
        if not points:
            return None

        executor = self._make_executor()
        try:
            tasks = self._build_tasks(executor, points, None)
            if not tasks:
                return None
            winners: Dict[int, Tuple[int, ...]] = {}
            self._evaluate_queue(
                executor, tasks, prune=False, winners=winners
            )
            front_points = self._evaluate_pareto_queue(
                executor, tasks, objectives, winners
            )
        except KeyboardInterrupt:
            executor.terminate()
            self.report.interrupted = True
            raise SynthesisInterrupted(
                f"pareto synthesis of {self.model.name} interrupted "
                f"after {self.report.ea_runs} EA and "
                f"{self.report.nsga_runs} NSGA-II runs; worker pool "
                "shut down cleanly",
                partial_memo=self.memo_snapshot(),
            ) from None
        finally:
            executor.close()
        if not front_points:
            return None

        merged = merge_fronts(front_points, objectives)
        best = merged[0]  # canonical order: first objective descending
        solution = self._materialize_gene(tasks[best.task_index], best.gene)
        return ParetoSolutionSet(
            model_name=self.model.name,
            total_power=self.config.total_power,
            objectives=objectives,
            points=merged,
            solution=solution,
        )

    def _evaluate_pareto_queue(
        self,
        executor,
        tasks: List[EvaluationTask],
        objectives: Tuple[str, ...],
        winners: Dict[int, Tuple[int, ...]],
    ) -> List[ParetoPoint]:
        """Phase 2: NSGA-II over every task; collect the local fronts.

        No pruning — a task dominated on throughput can still own the
        energy- or macro-frugal end of the global front. Outcomes are
        consumed in submission order, so the collected point list (and
        everything downstream) is independent of the worker count.
        """
        items = [
            ParetoTaskItem(
                task=task, objectives=objectives,
                inject=winners.get(task.index),
            )
            for task in tasks
        ]
        collected: List[ParetoPoint] = []
        for outcome in executor.imap_pareto(items):
            self.report.nsga_runs += 1
            self.report.cache_hits += outcome.cache_hits
            self.report.ea_evaluations += outcome.evaluations
            collected.extend(outcome.points)
            if self.archive is not None:
                for point in outcome.points:
                    self.archive.record(point.to_archive_entry())
        return collected

    def _materialize_gene(
        self, task: EvaluationTask, gene: Tuple[int, ...]
    ) -> SynthesisSolution:
        """Re-score one (task, gene) in-process into a full solution."""
        explorer = self._local_runner.make_explorer(task)
        _fitness, allocation, result = explorer.score(gene)
        assert allocation is not None and result is not None
        return SynthesisSolution(
            model_name=self.model.name,
            total_power=self.config.total_power,
            ratio_rram=task.point.ratio_rram,
            res_rram=task.point.res_rram,
            xb_size=task.point.xb_size,
            res_dac=task.res_dac,
            wt_dup=task.wt_dup,
            partition=MacroPartition.from_gene(gene),
            allocation=allocation,
            evaluation=result,
            spec=explorer.spec,
            budget=explorer.budget,
        )

    def _task_bounds(self, tasks: List[EvaluationTask]):
        """Pruning bounds for a whole queue, aligned with ``tasks``.

        Routes through the tensorized grid evaluator
        (:mod:`repro.core.grid_eval`) when ``config.grid_eval`` is on
        and numpy is present; otherwise the per-task scalar walk.
        Grid and scalar bounds are bit-identical (the differential
        suite's pinned claim), so both paths order and prune the
        queue identically — the second return value is the backend
        array for vectorized masking, ``None`` on the scalar path.
        """
        if self.config.grid_eval:
            from repro.core.grid_eval import (
                GridBoundEvaluator,
                grid_eval_supported,
            )

            if grid_eval_supported():
                if self._grid_evaluator is None:
                    self._grid_evaluator = GridBoundEvaluator(
                        self.model, self.config
                    )
                array = self._grid_evaluator.bounds_array(tasks)
                return [float(value) for value in array], array
        return (
            [self._local_runner.throughput_bound(t) for t in tasks],
            None,
        )

    def _evaluate_queue(
        self,
        executor,
        tasks: List[EvaluationTask],
        prune: Optional[bool] = None,
        winners: Optional[Dict[int, Tuple[int, ...]]] = None,
    ) -> Optional[TaskOutcome]:
        """Evaluate tasks (descending analytical bound), track the best.

        Pruning is decided lazily at dispatch time against the current
        incumbent; because the bound is a true upper bound and ties
        resolve to the smaller task index, a pruned task can never be
        the winner — so serial and parallel runs (whose pruning sets may
        differ through pool prefetch) still select identical solutions.
        Pruning is disabled when an archive is attached (the archive's
        purpose is recording the explored landscape, not just the
        winner) and in pareto mode, which passes ``prune=False`` so the
        set of per-task winner genes (collected into ``winners``) is
        identical whatever the worker count — the NSGA-II warm starts
        must not depend on pool prefetch timing.
        """
        if prune is None:
            prune = self.config.prune_dominated and self.archive is None
        if prune:
            bounds, bounds_array = self._task_bounds(tasks)
            order = sorted(
                range(len(tasks)), key=lambda i: (-bounds[i], i)
            )
        else:
            bounds, bounds_array = [], None
            order = list(range(len(tasks)))

        incumbent: Optional[TaskOutcome] = None
        wave_size = max(1, executor.jobs)
        cursor = 0
        while cursor < len(order):
            # Assemble the next wave of non-dominated tasks. Waves are
            # sized to the worker count so pruning decisions always see
            # the results of the previous wave — with one big dispatch,
            # pool prefetch would launch every EA before the first
            # incumbent could rule any of them out.
            wave: List[EvaluationTask] = []
            if (
                prune and incumbent is not None
                and bounds_array is not None
            ):
                # Grid path: one backend call masks the whole remaining
                # tail against the incumbent (fixed during assembly, so
                # the mask equals the per-task checks below), then the
                # walk only counts pruned tasks until the wave fills.
                remaining = order[cursor:]
                mask = self._grid_evaluator.backend.prune_mask(
                    bounds_array, remaining,
                    incumbent.fitness, incumbent.index,
                )
                for dominated, position in zip(mask, remaining):
                    cursor += 1
                    if dominated:
                        self.report.pruned_tasks += 1
                        continue
                    self.report.ea_runs += 1
                    wave.append(tasks[position])
                    if len(wave) == wave_size:
                        break
            else:
                while cursor < len(order) and len(wave) < wave_size:
                    position = order[cursor]
                    cursor += 1
                    task = tasks[position]
                    if prune and incumbent is not None:
                        bound = bounds[position]
                        if bound < incumbent.fitness or (
                            bound == incumbent.fitness
                            and task.index > incumbent.index
                        ):
                            self.report.pruned_tasks += 1
                            continue
                    self.report.ea_runs += 1
                    wave.append(task)
            for outcome in executor.imap_tasks(wave):
                incumbent = self._absorb(outcome, tasks, incumbent)
                if (
                    winners is not None
                    and outcome.feasible
                    and outcome.gene is not None
                ):
                    winners[outcome.index] = outcome.gene
        return incumbent

    def _absorb(
        self,
        outcome: TaskOutcome,
        tasks: List[EvaluationTask],
        incumbent: Optional[TaskOutcome],
    ) -> Optional[TaskOutcome]:
        """Fold one task outcome into the report/archive/incumbent."""
        self.report.cache_hits += outcome.cache_hits
        self.report.ea_evaluations += outcome.ea_evaluations
        if not outcome.feasible:
            return incumbent
        self.report.best_history.append(outcome.fitness)
        task = tasks[outcome.index]
        # Fold each task's winning (context, gene) -> fitness into the
        # parent-side memo: with a process pool the workers' caches are
        # unreachable, so this is what memo_snapshot() can still harvest
        # from a parallel run.
        cache = self._local_runner.cache
        if cache is not None and outcome.gene is not None:
            context = task.context_key(
                self._local_runner._model_key,
                self._local_runner._params_key,
            )
            cache.preload((context, outcome.gene), outcome.fitness)
        if self.archive is not None:
            from repro.core.archive import ArchiveEntry

            self.archive.record(ArchiveEntry(
                ratio_rram=task.point.ratio_rram,
                res_rram=task.point.res_rram,
                xb_size=task.point.xb_size,
                res_dac=task.res_dac,
                wt_dup=task.wt_dup,
                throughput=outcome.throughput,
                power=outcome.power,
                tops_per_watt=outcome.tops_per_watt,
                latency=outcome.latency,
                num_macros=outcome.num_macros,
            ))
        if incumbent is None or outcome.fitness > incumbent.fitness or (
            outcome.fitness == incumbent.fitness
            and outcome.index < incumbent.index
        ):
            incumbent = outcome
            self._log(
                f"  new best: {outcome.throughput:.1f} img/s "
                f"({outcome.tops_per_watt:.3f} TOPS/W) at "
                f"ResDAC={task.res_dac} "
                f"WtDup={list(task.wt_dup)[:4]}..."
            )
        return incumbent

    def _materialize(
        self, task: EvaluationTask, outcome: TaskOutcome
    ) -> SynthesisSolution:
        """Re-score the winning gene in-process into a full solution.

        Scoring is deterministic, so this reproduces exactly the
        evaluation the (possibly remote) worker reported.
        """
        assert outcome.gene is not None
        return self._materialize_gene(task, outcome.gene)
