"""Pareto-front solution sets: the multi-objective synthesis artifact.

Single-objective synthesis returns one
:class:`repro.core.solution.SynthesisSolution`; pareto mode returns a
:class:`ParetoSolutionSet` — the global non-dominated trade-off surface
over :attr:`repro.core.config.SynthesisConfig.objectives`, merged from
per-task NSGA-II fronts by :mod:`repro.core.executor`. Each
:class:`ParetoPoint` carries the full decision record (design point,
WtDup, gene) plus every scalar metric, so any point can be
re-materialized into a complete solution, re-verified against the
scalar :class:`repro.core.evaluator.PerformanceEvaluator`, or exported
into the :class:`repro.core.archive.DesignArchive` toolchain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.archive import ArchiveEntry
from repro.core.config import OBJECTIVE_SENSES, objective_vector
from repro.core.solution import SynthesisSolution
from repro.errors import ConfigurationError
from repro.optim.dominance import hypervolume as _hypervolume
from repro.optim.dominance import non_dominated_indices

#: Metric columns every point serializes (superset of any objective set).
_METRIC_FIELDS = (
    "throughput", "power", "tops_per_watt", "latency",
    "energy_per_image", "num_macros",
)


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design: decisions + metrics, JSON-stable."""

    ratio_rram: float
    res_rram: int
    xb_size: int
    res_dac: int
    num_crossbars: int
    wt_dup: Tuple[int, ...]
    gene: Tuple[int, ...]
    throughput: float
    power: float
    tops_per_watt: float
    latency: float
    energy_per_image: float
    num_macros: int
    task_index: int = -1

    def metrics(self) -> Dict[str, float]:
        """Every serialized metric, by objective-registry name."""
        return {name: getattr(self, name) for name in _METRIC_FIELDS}

    def objective_vector(
        self, objectives: Sequence[str]
    ) -> Tuple[float, ...]:
        """Sense-adjusted coordinates for the shared dominance helpers."""
        return objective_vector(self.metrics(), objectives)

    def reevaluate(self, model, config):
        """Re-run the scalar oracle on this point's exact decisions.

        Rebuilds the stage-2 spec and Eq. 3 budget from the recorded
        design point (the same construction the DSE's task runner
        uses) and scores the recorded gene through a fresh
        :class:`repro.core.macro_partition.MacroPartitionExplorer` —
        an independent witness that a stored front point's metrics are
        reproducible. Returns the :class:`repro.core.evaluator.
        EvaluationResult`; raises :class:`repro.errors.InfeasibleError`
        if the point does not check out (a corrupt artifact).
        """
        import random

        from repro.core.dataflow import make_spec
        from repro.core.macro_partition import MacroPartitionExplorer
        from repro.errors import InfeasibleError
        from repro.hardware.power import PowerBudget

        spec = make_spec(
            model, self.wt_dup,
            xb_size=self.xb_size, res_rram=self.res_rram,
            res_dac=self.res_dac, params=config.params,
            max_blocks_per_layer=config.max_blocks_per_layer,
        )
        budget = PowerBudget(
            total_power=config.total_power,
            ratio_rram=self.ratio_rram, xb_size=self.xb_size,
            res_rram=self.res_rram, num_crossbars=self.num_crossbars,
        )
        explorer = MacroPartitionExplorer(
            spec=spec, budget=budget, res_dac=self.res_dac,
            config=config, rng=random.Random(0),
        )
        _fitness, allocation, result = explorer.score(self.gene)
        if allocation is None or result is None:
            raise InfeasibleError(
                "pareto point does not re-evaluate as feasible"
            )
        return result

    def to_archive_entry(self) -> ArchiveEntry:
        """Bridge into the archive/post-hoc analysis toolchain."""
        return ArchiveEntry(
            ratio_rram=self.ratio_rram, res_rram=self.res_rram,
            xb_size=self.xb_size, res_dac=self.res_dac,
            wt_dup=self.wt_dup, throughput=self.throughput,
            power=self.power, tops_per_watt=self.tops_per_watt,
            latency=self.latency, num_macros=self.num_macros,
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "design_point": {
                "ratio_rram": self.ratio_rram,
                "res_rram": self.res_rram,
                "xb_size": self.xb_size,
                "res_dac": self.res_dac,
                "num_crossbars": self.num_crossbars,
            },
            "wt_dup": list(self.wt_dup),
            "gene": list(self.gene),
            "task_index": self.task_index,
            "metrics": {
                "throughput_img_s": self.throughput,
                "power_w": self.power,
                "tops_per_watt": self.tops_per_watt,
                "latency_s": self.latency,
                "energy_per_image_j": self.energy_per_image,
                "num_macros": self.num_macros,
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ParetoPoint":
        point = payload["design_point"]
        metrics = payload["metrics"]
        return cls(
            ratio_rram=float(point["ratio_rram"]),
            res_rram=int(point["res_rram"]),
            xb_size=int(point["xb_size"]),
            res_dac=int(point["res_dac"]),
            num_crossbars=int(point.get("num_crossbars", 0)),
            wt_dup=tuple(int(d) for d in payload["wt_dup"]),
            gene=tuple(int(g) for g in payload["gene"]),
            task_index=int(payload.get("task_index", -1)),
            throughput=float(metrics["throughput_img_s"]),
            power=float(metrics["power_w"]),
            tops_per_watt=float(metrics["tops_per_watt"]),
            latency=float(metrics["latency_s"]),
            energy_per_image=float(metrics["energy_per_image_j"]),
            num_macros=int(metrics["num_macros"]),
        )


def merge_fronts(
    points: Sequence[ParetoPoint], objectives: Sequence[str]
) -> List[ParetoPoint]:
    """Non-dominated merge of (per-task) front points into one front.

    Applies the shared strict dominance over the sense-adjusted
    vectors, deduplicates identical objective vectors by keeping the
    lowest ``(task_index, gene)`` witness, and sorts by the first
    objective's adjusted value descending (ties: remaining objectives,
    then the witness key) — a canonical order that is independent of
    the arrival order of the per-task fronts, hence of ``jobs``.
    """
    vectors = [p.objective_vector(objectives) for p in points]
    survivors = non_dominated_indices(vectors)
    best_witness: Dict[Tuple[float, ...], int] = {}
    for index in survivors:
        vector = vectors[index]
        held = best_witness.get(vector)
        if held is None or (
            (points[index].task_index, points[index].gene)
            < (points[held].task_index, points[held].gene)
        ):
            best_witness[vector] = index
    merged = sorted(
        best_witness.values(),
        key=lambda i: (
            tuple(-value for value in vectors[i]),
            points[i].task_index, points[i].gene,
        ),
    )
    return [points[i] for i in merged]


@dataclass
class ParetoSolutionSet:
    """The multi-objective synthesis result: one global Pareto front.

    ``points`` are non-dominated under ``objectives`` and sorted by
    the first objective (best first). ``solution`` is the front's
    best-throughput point materialized into a full
    :class:`SynthesisSolution` — by construction it matches what the
    single-objective ``synthesize()`` returns for the same request.
    """

    model_name: str
    total_power: float
    objectives: Tuple[str, ...]
    points: List[ParetoPoint] = field(default_factory=list)
    solution: Optional[SynthesisSolution] = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def best(self, objective: str = "throughput") -> ParetoPoint:
        """The front's best point under one metric (its native sense)."""
        if not self.points:
            raise ConfigurationError("pareto front is empty")
        if objective not in OBJECTIVE_SENSES:
            raise ConfigurationError(
                f"unknown objective {objective!r}; valid: "
                f"{sorted(OBJECTIVE_SENSES)}"
            )
        sense = OBJECTIVE_SENSES[objective]
        return max(
            self.points, key=lambda p: sense * getattr(p, objective)
        )

    def objective_vectors(self) -> List[Tuple[float, ...]]:
        return [p.objective_vector(self.objectives) for p in self.points]

    def hypervolume(
        self, reference: Optional[Sequence[float]] = None
    ) -> float:
        """Dominated hypervolume of the front (sense-adjusted space).

        Without an explicit ``reference`` the nadir of the front itself
        is used (componentwise worst, nudged strictly below), making
        the value self-contained — comparable across runs of the same
        request, which is all the bench artifact needs.
        """
        vectors = self.objective_vectors()
        if not vectors:
            return 0.0
        if reference is None:
            nadir = [
                min(vector[axis] for vector in vectors)
                for axis in range(len(self.objectives))
            ]
            reference = [
                value - max(1e-12, abs(value) * 1e-9) for value in nadir
            ]
        return _hypervolume(vectors, tuple(reference))

    # ------------------------------------------------------------------
    # Presentation / serialization
    # ------------------------------------------------------------------
    def front_table(self) -> str:
        """Aligned ASCII table of the front (the CLI's --pareto view)."""
        from repro.analysis.report import format_pareto_front

        return format_pareto_front(self)

    def to_csv(self) -> str:
        """The front as CSV (one row per point, stable column order)."""
        from repro.analysis.report import pareto_front_csv

        return pareto_front_csv(self)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready artifact: the serve layer's ``front`` document."""
        return {
            "schema": 1,
            "model": self.model_name,
            "total_power": self.total_power,
            "objectives": list(self.objectives),
            "points": [p.to_payload() for p in self.points],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent)

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, Any],
        solution: Optional[SynthesisSolution] = None,
    ) -> "ParetoSolutionSet":
        """Inverse of :meth:`to_payload` (the store round trip).

        ``solution`` optionally re-attaches a materialized best
        solution (e.g. via :func:`repro.core.persistence.
        solution_from_payload` from the result document's ``solution``
        key); the front itself round-trips without it.
        """
        return cls(
            model_name=str(payload["model"]),
            total_power=float(payload["total_power"]),
            objectives=tuple(str(o) for o in payload["objectives"]),
            points=[
                ParetoPoint.from_payload(p) for p in payload["points"]
            ],
            solution=solution,
        )
