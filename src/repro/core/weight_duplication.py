"""Stage 1 — weight duplication via the SA-based filter (§IV-A).

The constrained problem (Eq. 2)::

    maximize   Performance(WtDup)
    s.t.       sum_i WtDup_i * set_i <= #crossbar

is pruned with simulated annealing over the surrogate energy (Eq. 4)::

    E = stdev_i(WO_i * HO_i / WtDup_i)
        + alpha * stdev_i(AccessVolume_i)
    AccessVolume_i = WtDup_i * (WK_i^2 * CI_i + CO_i)

The first term balances per-layer computation (equal block counts means a
balanced inter-layer pipeline); the second penalizes skewed data-access
demand. The filter returns the ``top_k`` lowest-energy *distinct*
duplication vectors, which Alg. 1 then traverses exactly (line 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

# Single numpy gate: the backend registry owns the import (and its
# absence), so every tensorized path degrades identically.
from repro.core.backend import numpy_module
from repro.core.config import SynthesisConfig
from repro.errors import InfeasibleError
from repro.hardware.crossbar import crossbar_set_size
from repro.nn.model import CNNModel
from repro.optim.annealing import AnnealingSchedule, SimulatedAnnealer
from repro.utils.mathutils import stdev

WtDup = Tuple[int, ...]


@dataclass
class WeightDuplicationFilter:
    """SA-based WtDup candidate filter for one outer design point."""

    model: CNNModel
    xb_size: int
    res_rram: int
    num_crossbars: int
    config: SynthesisConfig

    def __post_init__(self) -> None:
        layers = self.model.weighted_layers
        self.set_sizes: List[int] = [
            crossbar_set_size(
                layer, self.xb_size, self.res_rram,
                self.model.weight_precision,
            )
            for layer in layers
        ]
        self.out_positions: List[int] = []
        self.volume_units: List[int] = []
        for layer in layers:
            assert layer.output_shape is not None
            _, ho, wo = layer.output_shape
            self.out_positions.append(ho * wo)
            rows = layer.weight_rows  # type: ignore[attr-defined]
            cols = getattr(layer, "out_channels", None)
            if cols is None:
                cols = layer.out_features  # type: ignore[attr-defined]
            self.volume_units.append(rows + cols)
        floor = sum(self.set_sizes)
        if floor > self.num_crossbars:
            raise InfeasibleError(
                f"{self.model.name}: needs {floor} crossbars at WtDup=1 "
                f"but the budget is {self.num_crossbars}"
            )
        # WtDup_i never exceeds the layer's output count: more copies than
        # output positions cannot be used within one image.
        self.dup_caps: List[int] = list(self.out_positions)

    # ------------------------------------------------------------------
    # Eq. 2 feasibility
    # ------------------------------------------------------------------
    def crossbars_used(self, wt_dup: Sequence[int]) -> int:
        return sum(
            dup * size for dup, size in zip(wt_dup, self.set_sizes)
        )

    def is_feasible(self, wt_dup: Sequence[int]) -> bool:
        if any(d < 1 for d in wt_dup):
            return False
        if any(d > cap for d, cap in zip(wt_dup, self.dup_caps)):
            return False
        return self.crossbars_used(wt_dup) <= self.num_crossbars

    # ------------------------------------------------------------------
    # Eq. 4 energy
    # ------------------------------------------------------------------
    def energy(self, wt_dup: Sequence[int]) -> float:
        steps = [
            positions / dup
            for positions, dup in zip(self.out_positions, wt_dup)
        ]
        volumes = [
            dup * unit for dup, unit in zip(wt_dup, self.volume_units)
        ]
        return stdev(steps) + self.config.sa_alpha * stdev(volumes)

    def batch_energy(self, states: Sequence[Sequence[int]]) -> List[float]:
        """Eq. 4 for a whole proposal round, vectorized over states.

        Cross-layer reductions accumulate in layer order (the same
        left-to-right sums :func:`repro.utils.mathutils.stdev` runs),
        so each value is bit-identical to :meth:`energy` on that state
        — the SA walk cannot depend on which backend scored it.
        """
        np = numpy_module()
        if np is None:
            return [self.energy(state) for state in states]
        dup = np.asarray(states, dtype=np.float64)
        steps = np.array(self.out_positions, dtype=np.float64) / dup
        volumes = dup * np.array(
            self.volume_units, dtype=np.float64
        )
        energies = self._batch_stdev(steps)
        energies = energies + self.config.sa_alpha * self._batch_stdev(
            volumes
        )
        return [float(e) for e in energies]

    def _batch_stdev(self, values):
        """Population stdev over the layer axis, ordered like ``stdev``.

        The two cross-layer reductions run through the configured
        backend's ``ordered_sum`` primitive — left-to-right layer
        order, so every engine reproduces :func:`repro.utils.
        mathutils.stdev` bit-for-bit (the conformance suite pins the
        primitive itself)."""
        from repro.core.backend import get_backend

        np = numpy_module()
        backend = get_backend(self.config.backend)
        count = values.shape[1]
        acc = np.asarray(
            backend.ordered_sum(values), dtype=np.float64
        )
        mu = acc / count
        spread = np.asarray(
            backend.ordered_sum((values - mu[:, None]) ** 2),
            dtype=np.float64,
        )
        return np.sqrt(spread / count)

    # ------------------------------------------------------------------
    # Initial state: greedy balanced fill
    # ------------------------------------------------------------------
    def initial_state(self) -> WtDup:
        """All-ones, then repeatedly duplicate the layer with the most
        remaining steps while the budget allows — a cheap approximation
        of the balanced pipeline the SA walk refines."""
        dup = [1] * len(self.set_sizes)
        remaining = self.num_crossbars - self.crossbars_used(dup)
        improved = True
        while improved:
            improved = False
            order = sorted(
                range(len(dup)),
                key=lambda i: self.out_positions[i] / dup[i],
                reverse=True,
            )
            for index in order:
                cost = self.set_sizes[index]
                if cost <= remaining and dup[index] < self.dup_caps[index]:
                    dup[index] += 1
                    remaining -= cost
                    improved = True
                    break
        return tuple(dup)

    # ------------------------------------------------------------------
    # SA neighborhood
    # ------------------------------------------------------------------
    def neighbor(self, state: WtDup, rng: random.Random) -> WtDup:
        """One feasible random move: grow, shrink, or shift duplication.

        Retries a few times to find a feasible move; falls back to the
        unchanged state when the budget is completely tight.
        """
        n_layers = len(state)
        for _ in range(16):
            move = rng.randrange(3)
            candidate = list(state)
            if move == 0:  # grow one layer
                index = rng.randrange(n_layers)
                candidate[index] += 1
            elif move == 1:  # shrink one layer
                index = rng.randrange(n_layers)
                candidate[index] -= 1
            else:  # shift: shrink one, grow another
                src = rng.randrange(n_layers)
                dst = rng.randrange(n_layers)
                if src == dst:
                    continue
                candidate[src] -= 1
                candidate[dst] += 1
            if self.is_feasible(candidate):
                return tuple(candidate)
        return state

    # ------------------------------------------------------------------
    # Entry point (Alg. 1 line 6)
    # ------------------------------------------------------------------
    def top_candidates(self, rng: random.Random) -> List[WtDup]:
        """Run the SA filter; return the best distinct WtDup vectors."""
        schedule = AnnealingSchedule(
            initial_temperature=self.config.sa_initial_temperature,
            min_temperature=self.config.sa_min_temperature,
            cooling_rate=self.config.sa_cooling_rate,
            steps_per_temp=self.config.sa_steps_per_temp,
        )
        annealer = SimulatedAnnealer(
            energy=self.energy,
            neighbor=self.neighbor,
            state_key=lambda state: state,
            rng=rng,
            schedule=schedule,
            batch_energy=self.batch_energy,
            proposal_batch=self.config.sa_proposal_batch,
        )
        ranked = annealer.run(
            self.initial_state(), top_k=self.config.num_wtdup_candidates
        )
        return [state for state, _energy in ranked]
