"""The Table I design space: variables, iteration, and scale estimation.

Alg. 1's outer loops traverse the *PIM-related* variables (``RatioRram``,
``ResRram``, ``XbSize``); for each point, Eq. 3 fixes the crossbar budget
and the inner stages explore ``WtDup`` (SA filter), ``ResDAC`` (loop) and
``MacAlloc``/``CompAlloc`` (EA + closed form). :class:`DesignSpace`
produces the outer-point stream and estimates the full space's size —
"the scale of our defined design space can reach up to 1e27 for VGG13"
(§III), which the E8 bench reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.config import SynthesisConfig
from repro.errors import InfeasibleError
from repro.hardware.crossbar import crossbar_set_size
from repro.hardware.power import crossbar_budget
from repro.nn.model import CNNModel


@dataclass(frozen=True)
class DesignPoint:
    """One outer-loop point of Alg. 1 (lines 3-5) plus its Eq. 3 budget."""

    ratio_rram: float
    res_rram: int
    xb_size: int
    num_crossbars: int

    def describe(self) -> str:
        return (
            f"RatioRram={self.ratio_rram} ResRram={self.res_rram} "
            f"XbSize={self.xb_size} #crossbar={self.num_crossbars}"
        )


class DesignSpace:
    """Enumerates feasible outer design points for a model + config."""

    def __init__(self, model: CNNModel, config: SynthesisConfig) -> None:
        self.model = model
        self.config = config
        self._min_crossbars: dict = {}

    def outer_points(self) -> Iterator[DesignPoint]:
        """Yield Alg. 1 lines 3-5 grid points that can hold the model.

        A point is infeasible when the Eq. 3 crossbar budget cannot store
        even one copy of every layer's weights; such points are skipped
        (they would make Eq. 2 unsatisfiable).
        """
        config = self.config
        for ratio in config.ratio_rram_choices:
            for res_rram in config.res_rram_choices:
                for xb_size in config.xb_size_choices:
                    try:
                        budget = crossbar_budget(
                            config.total_power, ratio, xb_size, res_rram,
                            config.params,
                        )
                    except InfeasibleError:
                        continue
                    minimum = self.min_crossbars(xb_size, res_rram)
                    if budget < minimum:
                        continue
                    yield DesignPoint(
                        ratio_rram=ratio,
                        res_rram=res_rram,
                        xb_size=xb_size,
                        num_crossbars=budget,
                    )

    def min_crossbars(self, xb_size: int, res_rram: int) -> int:
        """Crossbars needed at WtDup = 1 for every layer (Eq. 2 floor).

        Memoized per ``(XbSize, ResRram)``: the outer grid revisits
        each combo once per RatioRram choice, and
        :meth:`minimum_feasible_power` walks the same combos again.
        """
        key = (xb_size, res_rram)
        cached = self._min_crossbars.get(key)
        if cached is None:
            cached = sum(
                crossbar_set_size(
                    layer, xb_size, res_rram, self.model.weight_precision
                )
                for layer in self.model.weighted_layers
            )
            self._min_crossbars[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Scale estimation (E8)
    # ------------------------------------------------------------------
    def wtdup_space_log10(self, point: DesignPoint) -> float:
        """log10 of the number of feasible WtDup vectors at ``point``.

        The count of positive-integer solutions of
        ``sum_i WtDup_i * set_i <= N`` equals the number of lattice
        points under a simplex; its volume approximation is
        ``N^L / (L! * prod_i set_i)``, accurate for N >> sum(set_i).
        """
        sets = [
            crossbar_set_size(
                layer, point.xb_size, point.res_rram,
                self.model.weight_precision,
            )
            for layer in self.model.weighted_layers
        ]
        n_layers = len(sets)
        n_crossbars = point.num_crossbars
        log10 = (
            n_layers * math.log10(n_crossbars)
            - math.log10(math.factorial(n_layers))
            - sum(math.log10(s) for s in sets)
        )
        return max(0.0, log10)

    def macalloc_space_log10(self, point: DesignPoint) -> float:
        """log10 of macro-partitioning choices (rule-c bound + sharing).

        Each layer independently picks 1..cap_i macros and optionally a
        sharing partner among earlier layers: ``prod_i cap_i * (i + 1)``.
        (An upper bound; the pairing constraint trims it slightly.)
        """
        log10 = 0.0
        for index, layer in enumerate(self.model.weighted_layers):
            rows = layer.weight_rows  # type: ignore[attr-defined]
            cap = max(1, math.ceil(rows / point.xb_size))
            log10 += math.log10(cap * (index + 1))
        return log10

    def total_scale_log10(self) -> float:
        """log10 of the full Table I space for this model + config.

        Sums the WtDup x MacAlloc x ResDAC cardinality over all outer
        points. For VGG13 with the paper's full grid this lands around
        1e27 (checked by the E8 bench).
        """
        total = 0.0
        for point in self.outer_points():
            log10 = (
                self.wtdup_space_log10(point)
                + self.macalloc_space_log10(point)
                + math.log10(len(self.config.res_dac_choices))
            )
            total += 10 ** min(log10, 300.0)
        return math.log10(total) if total > 0 else 0.0

    def feasible_points(self) -> List[DesignPoint]:
        """Materialized list of :meth:`outer_points` (for reports)."""
        return list(self.outer_points())

    def minimum_feasible_power(self, margin: float = 1.0) -> float:
        """Smallest total power at which some outer point can hold the model.

        Two floors apply at every (RatioRram, ResRram, XbSize) choice:
        the ReRAM side must afford one weight copy of every layer
        (Eq. 3 vs the WtDup=1 crossbar count), and the peripheral side
        must cover the structural overhead (per-macro eDRAM/NoC/registers
        at one macro per layer, per-crossbar DACs and sample-holds) with
        headroom for at least token ADC/ALU banks. ``margin`` scales the
        result — synthesis wants headroom to actually duplicate weights,
        so experiments typically pass 1.5-3.
        """
        params = self.config.params
        n_layers = self.model.num_weighted_layers
        best = math.inf
        for ratio in self.config.ratio_rram_choices:
            for res_rram in self.config.res_rram_choices:
                for xb_size in self.config.xb_size_choices:
                    min_xb = self.min_crossbars(xb_size, res_rram)
                    storage_floor = (
                        min_xb * params.crossbar_power_of(xb_size) / ratio
                    )
                    per_macro = (
                        params.edram_power + params.noc_power
                        + params.register_power_per_macro
                    )
                    res_dac = min(self.config.res_dac_choices)
                    per_crossbar = xb_size * (
                        params.dac_power_of(res_dac)
                        + params.sample_hold_power
                    )
                    fixed = (
                        n_layers * per_macro + min_xb * per_crossbar
                    )
                    # Leave at least 20% of the peripheral share for
                    # ADC/ALU banks, or allocation degenerates.
                    overhead_floor = fixed / (0.8 * (1.0 - ratio))
                    best = min(best, max(storage_floor, overhead_floor))
        if not math.isfinite(best):
            raise InfeasibleError(
                f"{self.model.name}: no grid choice can hold the model"
            )
        return best * margin
