"""Stage 3 — EA-based macro partitioning (§IV-C, Alg. 2).

A gene encodes ``MacAlloc`` exactly as the paper does: an integer vector
with ``MacAlloc_i = owner * 1000 + #macros_i`` where ``owner == i`` for a
layer owning its macro group, or ``owner == j < i`` when layer ``i``
shares layer ``j``'s macros (rule b). The partition rules (§IV-C1):

a) a layer occupies one or more macros;
b) two layers may share the same macro set (pairs only, smaller index
   owns the set);
c) layer ``i`` splits across at most ``WtDup_i * ceil(WK^2*CI/XbSize)``
   macros, and every macro holds at least one crossbar.

Two mutation operators drive the search — ``mutate_num`` perturbs a
group's macro count, ``mutate_share`` toggles pair sharing — and fitness
is the full downstream evaluation (components allocation + analytical
model), mirroring Fig. 3's EA loop through the components-allocation
stage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, MutableMapping, Optional, Sequence, Tuple

from repro.core.batch_eval import (
    BatchPerformanceEvaluator,
    numpy_available,
)
from repro.core.component_alloc import (
    ComponentAllocation,
    allocate_components,
)
from repro.core.config import (
    SynthesisConfig,
    infeasible_objective_vector,
    objective_vector,
)
from repro.core.evaluator import EvaluationResult, PerformanceEvaluator
from repro.errors import ConfigurationError, InfeasibleError
from repro.hardware.power import PowerBudget
from repro.ir.builder import DataflowSpec
from repro.optim.evolution import EvolutionEngine

Gene = Tuple[int, ...]

_ENCODING_BASE = 1000


def encode_gene(owners: Sequence[int], macro_counts: Sequence[int]) -> Gene:
    """Pack (owner, #macros) pairs into the paper's integer encoding."""
    if len(owners) != len(macro_counts):
        raise ConfigurationError("owners and macro_counts length mismatch")
    gene = []
    for index, (owner, count) in enumerate(zip(owners, macro_counts)):
        if owner > index:
            raise ConfigurationError(
                f"layer {index}: owner {owner} must be <= layer index"
            )
        if count < 1 or count >= _ENCODING_BASE:
            raise ConfigurationError(
                f"layer {index}: #macros {count} outside [1, "
                f"{_ENCODING_BASE})"
            )
        gene.append(owner * _ENCODING_BASE + count)
    return tuple(gene)


def decode_gene(gene: Gene) -> Tuple[List[int], List[int]]:
    """Unpack a gene into (owners, macro_counts)."""
    owners, counts = [], []
    for index, value in enumerate(gene):
        owner, count = divmod(value, _ENCODING_BASE)
        if count < 1:
            raise ConfigurationError(
                f"layer {index}: decoded #macros {count} < 1"
            )
        if owner > index:
            raise ConfigurationError(
                f"layer {index}: decoded owner {owner} > index"
            )
        owners.append(owner)
        counts.append(count)
    return owners, counts


@dataclass(frozen=True)
class MacroPartition:
    """A decoded, materialized macro partition."""

    gene: Gene
    macro_groups: Tuple[Tuple[int, ...], ...]  # macro ids per layer
    sharing_pairs: Tuple[Tuple[int, int], ...]  # (owner j, sharer i)
    num_macros: int

    @classmethod
    def from_gene(cls, gene: Gene) -> "MacroPartition":
        """Assign concrete macro ids: owner groups in layer order."""
        owners, counts = decode_gene(gene)
        group_of_owner: Dict[int, Tuple[int, ...]] = {}
        next_id = 0
        for index, owner in enumerate(owners):
            if owner == index:
                size = counts[index]
                group_of_owner[index] = tuple(
                    range(next_id, next_id + size)
                )
                next_id += size
        groups: List[Tuple[int, ...]] = []
        pairs: List[Tuple[int, int]] = []
        for index, owner in enumerate(owners):
            if owner == index:
                groups.append(group_of_owner[index])
            else:
                if owner not in group_of_owner:
                    raise ConfigurationError(
                        f"layer {index} shares with {owner}, which is not "
                        "an owner"
                    )
                groups.append(group_of_owner[owner])
                pairs.append((owner, index))
        return cls(
            gene=gene,
            macro_groups=tuple(groups),
            sharing_pairs=tuple(pairs),
            num_macros=next_id,
        )


class MacroPartitionExplorer:
    """Alg. 2: evolve MacAlloc, scoring through stage 4 + the evaluator.

    ``cache``/``cache_context`` plug the explorer into the DSE-wide
    evaluation memo (see :mod:`repro.core.executor`): fitness values are
    stored under ``(cache_context, gene)`` so identical (model, hardware
    params, design point, gene) evaluations are shared across EA runs.
    Without them the engine falls back to a private per-run memo, which
    is the original behavior.

    ``batch_eval`` selects the population-scoring engine: ``True`` runs
    whole EA generations through the numpy evaluator of
    :mod:`repro.core.batch_eval` (bit-identical metrics, one vector op
    per stage instead of one Python call per gene), ``False`` keeps the
    gene-at-a-time oracle, and ``None`` (default) follows
    ``config.batch_eval``. Either way :meth:`score` remains the scalar
    reference for individual genes (winner materialization, tests).
    """

    def __init__(
        self,
        spec: DataflowSpec,
        budget: PowerBudget,
        res_dac: int,
        config: SynthesisConfig,
        rng: random.Random,
        cache: Optional[MutableMapping] = None,
        cache_context: Optional[Hashable] = None,
        batch_eval: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.budget = budget
        self.res_dac = res_dac
        self.config = config
        self.rng = rng
        self.cache = cache
        self.cache_context = cache_context
        if batch_eval is None:
            batch_eval = config.batch_eval
        self.batch_eval = bool(batch_eval) and numpy_available()
        self._batch_evaluator: Optional[BatchPerformanceEvaluator] = None
        self.last_report = None  # EvolutionReport of the latest explore()
        self.evaluator = PerformanceEvaluator(spec, budget)
        # Rule c caps: WtDup * row-tile count, and >= 1 crossbar per macro.
        self.caps: List[int] = []
        for geo in spec.geometries:
            cap = min(geo.wt_dup * geo.row_tiles, geo.crossbars)
            self.caps.append(max(1, min(cap, _ENCODING_BASE - 1)))

    # ------------------------------------------------------------------
    # Evaluation plumbing
    # ------------------------------------------------------------------
    def score(
        self, gene: Gene
    ) -> Tuple[float, Optional[ComponentAllocation],
               Optional[EvaluationResult]]:
        """Fitness of a gene; infeasible genes score zero."""
        partition = MacroPartition.from_gene(gene)
        pairs = (
            partition.sharing_pairs
            if self.config.enable_macro_sharing else ()
        )
        try:
            allocation = allocate_components(
                self.spec.geometries,
                partition.macro_groups,
                self.budget,
                self.spec.params,
                self.res_dac,
                self.spec.model,
                sharing_pairs=pairs,
                identical_macros=not self.config.specialized_macros,
            )
        except InfeasibleError:
            return 0.0, None, None
        result = self.evaluator.evaluate(
            partition.macro_groups, allocation
        )
        return result.fitness, allocation, result

    def score_population(self, genes: Sequence[Gene]) -> List[float]:
        """Fitness of every gene in one vectorized pass.

        Numerically identical to calling :meth:`score` per gene (the
        batched engine replicates the scalar operation order); used by
        the EA as its generation-level ``batch_fitness`` hook. With
        ``batch_eval`` off (or numpy unavailable) it degrades to the
        scalar loop, so callers get the same values either way.
        """
        if not self.batch_eval:
            return [self.score(gene)[0] for gene in genes]
        return self.batch_evaluator.fitness_of(genes)

    # ------------------------------------------------------------------
    # Vector objectives (the NSGA-II / pareto-mode scoring path)
    # ------------------------------------------------------------------
    def score_objectives(
        self, gene: Gene, objectives: Optional[Sequence[str]] = None
    ) -> Tuple[float, ...]:
        """Sense-adjusted objective vector of one gene (scalar oracle).

        Metric names come from :data:`repro.core.config.
        OBJECTIVE_SENSES`; ``num_macros`` reads the decoded partition,
        everything else the :class:`EvaluationResult`. Infeasible genes
        get the all ``-inf`` sentinel — dominated by every feasible
        vector, tying (never dominating) other infeasible ones.
        """
        if objectives is None:
            objectives = self.config.objectives
        _fitness, allocation, result = self.score(gene)
        if allocation is None or result is None:
            return infeasible_objective_vector(objectives)
        metrics = {
            name: (
                MacroPartition.from_gene(gene).num_macros
                if name == "num_macros" else getattr(result, name)
            )
            for name in objectives
        }
        return objective_vector(metrics, objectives)

    def score_population_objectives(
        self,
        genes: Sequence[Gene],
        objectives: Optional[Sequence[str]] = None,
    ) -> List[Tuple[float, ...]]:
        """Objective vectors of every gene in one vectorized pass.

        The multi-objective analog of :meth:`score_population`: the
        batched engine's metric arrays (bit-identical to the scalar
        oracle) feed the same :func:`repro.core.config.
        objective_vector` adapter the scalar path uses, so batched and
        scalar runs produce identical vectors — and therefore identical
        NSGA-II walks and fronts. Degrades to the scalar loop when
        ``batch_eval`` is off or numpy is unavailable.
        """
        if objectives is None:
            objectives = self.config.objectives
        if not self.batch_eval:
            return [
                self.score_objectives(gene, objectives) for gene in genes
            ]
        batch = self.batch_evaluator.evaluate_population(genes)
        vectors: List[Tuple[float, ...]] = []
        for position in range(len(genes)):
            if not bool(batch.feasible[position]):
                vectors.append(infeasible_objective_vector(objectives))
                continue
            metrics = {
                name: float(getattr(batch, name)[position])
                for name in objectives
            }
            vectors.append(objective_vector(metrics, objectives))
        return vectors

    @property
    def batch_evaluator(self) -> BatchPerformanceEvaluator:
        """The lazily built batched engine for this (spec, budget, DAC),
        running on ``config.backend`` (execution-only, like
        ``config.batch_eval`` itself)."""
        if self._batch_evaluator is None:
            self._batch_evaluator = BatchPerformanceEvaluator(
                self.spec,
                self.budget,
                self.res_dac,
                enable_macro_sharing=self.config.enable_macro_sharing,
                identical_macros=not self.config.specialized_macros,
                backend=self.config.backend,
            )
        return self._batch_evaluator

    # ------------------------------------------------------------------
    # Population initialization
    # ------------------------------------------------------------------
    def initial_population(self, size: int) -> List[Gene]:
        """Seed genes: one-macro-per-layer, cap-sized, and random mixes."""
        n_layers = self.spec.num_layers
        population: List[Gene] = [
            encode_gene(range(n_layers), [1] * n_layers)
        ]
        population.append(
            encode_gene(range(n_layers), list(self.caps))
        )
        while len(population) < size:
            counts = [
                self.rng.randint(1, self.caps[i]) for i in range(n_layers)
            ]
            population.append(encode_gene(range(n_layers), counts))
        return population

    # ------------------------------------------------------------------
    # Alg. 2's mutation operators
    # ------------------------------------------------------------------
    def mutate_num(self, gene: Gene, rng: random.Random) -> Gene:
        """Perturb the #macros of one randomly chosen macro group."""
        owners, counts = decode_gene(gene)
        index = rng.randrange(len(gene))
        target = owners[index]  # operate on the group owner
        cap = self.caps[target]
        if cap == 1:
            return gene
        delta = rng.choice((-2, -1, 1, 2))
        counts[target] = max(1, min(cap, counts[target] + delta))
        return encode_gene(owners, counts)

    def mutate_share(self, gene: Gene, rng: random.Random) -> Gene:
        """Toggle pair-sharing status of one randomly chosen layer."""
        if not self.config.enable_macro_sharing:
            return gene
        owners, counts = decode_gene(gene)
        n_layers = len(owners)
        index = rng.randrange(n_layers)

        if owners[index] != index:
            # Currently sharing: dissolve the pair.
            owners[index] = index
            return encode_gene(owners, counts)

        # Currently an owner: try to share with an earlier eligible owner.
        shared_owners = {o for i, o in enumerate(owners) if o != i}
        if index in shared_owners:
            return gene  # someone shares with us already (pairs only)
        candidates = [
            j for j in range(index)
            if owners[j] == j and j not in shared_owners
        ]
        if not candidates:
            return gene
        partner = rng.choice(candidates)
        owners[index] = partner
        return encode_gene(owners, counts)

    # ------------------------------------------------------------------
    # Entry point (Alg. 1 line 10)
    # ------------------------------------------------------------------
    def explore(
        self,
    ) -> Tuple[MacroPartition, ComponentAllocation, EvaluationResult]:
        """Run the EA; return the best feasible partition found.

        Raises :class:`InfeasibleError` if no gene in the search was
        feasible (e.g. the fixed overhead of even one macro per layer
        exceeds the peripheral budget).
        """
        context = self.cache_context
        engine: EvolutionEngine[Gene] = EvolutionEngine(
            fitness=lambda gene: self.score(gene)[0],
            mutations=[self.mutate_num, self.mutate_share],
            gene_key=lambda gene: gene,
            rng=self.rng,
            population_size=self.config.ea_population_size,
            offspring_per_gen=self.config.ea_offspring_per_gen,
            max_generations=self.config.ea_max_generations,
            patience=self.config.ea_patience,
            cache=self.cache,
            cache_key=(
                (lambda gene: (context, gene))
                if self.cache is not None else None
            ),
            batch_fitness=(
                self.score_population if self.batch_eval else None
            ),
        )
        self.last_report = engine.report
        best_gene, best_fitness = engine.run(
            self.initial_population(self.config.ea_population_size)
        )
        if best_fitness <= 0.0:
            raise InfeasibleError(
                "EA found no feasible macro partition under the power "
                "budget"
            )
        fitness, allocation, result = self.score(best_gene)
        assert allocation is not None and result is not None
        return MacroPartition.from_gene(best_gene), allocation, result
