"""Synthesis configuration: user inputs plus DSE effort knobs.

The paper's user inputs are the CNN model, a total power constraint and
the hardware setup parameters (§III). Everything else here controls how
much of Table I's space Alg. 1 walks — the full grid reproduces the
paper's four-hour synthesis; the ``fast()`` preset keeps unit tests and
benches snappy while exercising every stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.backend import DEFAULT_BACKEND, get_backend
from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams
from repro.hardware.tech import DEFAULT_TECHNOLOGY, get_technology

#: Metrics the multi-objective (pareto) mode can optimize, mapped to
#: their sense: ``+1`` maximized as-is, ``-1`` negated so the shared
#: dominance helpers (which maximize every component) minimize them.
#: Names match :class:`repro.core.evaluator.EvaluationResult` fields,
#: plus ``num_macros`` (the partition's macro count — the area/cost
#: proxy Table I's grid prices in macro periphery).
OBJECTIVE_SENSES = {
    "throughput": 1,
    "tops_per_watt": 1,
    "tops": 1,
    "energy_per_image": -1,
    "num_macros": -1,
    "power": -1,
    "latency": -1,
    "edp": -1,
}

#: Default pareto objective set: the trade-off surface the ROADMAP
#: names — speed vs energy vs macro/area cost.
DEFAULT_OBJECTIVES = ("throughput", "energy_per_image", "num_macros")


def objective_vector(metrics, objectives) -> Tuple[float, ...]:
    """Sense-adjusted (maximized) objective vector from a metric map.

    The one place metric values become dominance coordinates: minimized
    metrics are negated, everything else passes through bit-unchanged.
    Both the scalar and the batched scoring paths funnel through here,
    which is what makes their fronts identical, not merely close.
    """
    return tuple(
        float(metrics[name]) if OBJECTIVE_SENSES[name] > 0
        else -float(metrics[name])
        for name in objectives
    )


def infeasible_objective_vector(objectives) -> Tuple[float, ...]:
    """The vector assigned to infeasible genes: dominated by every
    feasible vector (all metrics are finite), never dominating a twin
    (equal vectors tie under strict dominance)."""
    return tuple(float("-inf") for _ in objectives)


@dataclass
class SynthesisConfig:
    """All knobs of one PIMSYN run.

    Parameters
    ----------
    total_power:
        The user's power constraint in watts (§III input).
    tech:
        Name of the device-technology profile (see
        :mod:`repro.hardware.tech`): supplies the hardware params and
        the default exploration domains, and participates in result
        content keys so two technologies never share cached results.
        Defaults to the paper's ``"reram"`` device.
    params:
        The concrete hardware constants. ``None`` (the default)
        materializes them from the ``tech`` profile; an explicit
        object overrides the profile's constants (``tech`` remains
        the provenance label — the sensitivity sweeps use this).
    ratio_rram_choices / res_rram_choices / xb_size_choices /
    res_dac_choices:
        The Table I grids Alg. 1 traverses (lines 3-5, 8). ``None``
        entries resolve to the technology profile's domains; explicit
        grids are validated against the technology's device tables
        (and, for profile-derived params, its cell resolutions).
    num_wtdup_candidates:
        Stage 1 keeps this many SA-filtered WtDup candidates (paper: 30).
    sa_* :
        Annealing schedule of the stage-1 filter.
    sa_alpha:
        Eq. 4's empirical ``alpha`` balancing workload vs access-volume
        spread.
    ea_* :
        Alg. 2 population knobs.
    specialized_macros:
        Per-layer macro customization (§V-C2). ``False`` forces identical
        macros chip-wide.
    enable_macro_sharing:
        Inter-layer macro/ADC reuse (§IV-C1 rule b, §V-C3).
    jobs:
        Worker processes for the DSE executor: 1 (default) evaluates the
        flat (point, WtDup, ResDAC) task queue in-process, ``n > 1``
        fans it out over a ``multiprocessing`` pool, and 0 means "one per
        CPU core". Serial and parallel runs return identical solutions
        for a fixed seed.
    prune_dominated:
        Skip the EA for tasks whose analytical throughput upper bound
        (:func:`repro.core.evaluator.throughput_upper_bound`) cannot
        beat the incumbent. The bound is sound, so pruning never changes
        the solution — only the telemetry (fewer EA runs).
    share_eval_cache:
        Share one content-keyed evaluation memo across all EA runs (per
        worker process), so re-visited (model, hardware params, design
        point, gene) tuples never re-run component allocation.
    batch_eval:
        Score whole EA populations through the numpy engine of
        :mod:`repro.core.batch_eval` (one vector op per pipeline stage
        instead of one Python call per gene). The batched engine
        replicates the scalar oracle's operation order, so results are
        identical for a fixed seed — this knob only changes speed.
        ``False`` falls back to gene-at-a-time evaluation (also the
        automatic fallback when numpy is unavailable).
    sa_proposal_batch:
        Neighbor proposals the stage-1 SA filter draws and scores per
        batch (its Eq. 4 energies vectorize the same way). ``1``
        reproduces the classic one-proposal-per-step chain exactly;
        larger batches draw each round's proposals from the round's
        entry state, which changes the (still deterministic) walk —
        the value therefore participates in result content keys.
    pareto:
        Multi-objective synthesis mode: :meth:`repro.core.synthesizer.
        Pimsyn.synthesize_pareto` runs NSGA-II per DSE task and merges
        the per-task fronts into one global Pareto front over
        ``objectives``. The flag participates in result content keys
        (a front is a different artifact than a single solution); the
        serve layer routes on it.
    objectives:
        The (ordered) metrics pareto mode trades off — names from
        :data:`OBJECTIVE_SENSES`, minimized metrics negated
        internally. At least two distinct objectives are required
        (one-objective fronts degenerate to the scalar EA — use
        ``synthesize()``).
    grid_eval:
        Bound the outer (design point, WtDup, ResDAC) task queue
        through the tensorized grid evaluator of
        :mod:`repro.core.grid_eval` (one ``(tasks, layers)`` pass
        instead of one spec rebuild per task) and prune dominated
        tasks by vectorized masking. The grid path is bit-identical
        to the per-task walk, so this knob — like ``batch_eval`` —
        only changes speed and is excluded from content keys.
        ``False`` (or a numpy-less interpreter) falls back to the
        per-task scalar walk.
    backend:
        Name of the array-execution backend every tensorized path
        runs on — the outer task-grid walk *and* the batched EA/NSGA/
        SA population scoring (see :mod:`repro.core.backend`):
        ``"numpy"`` (default), ``"python"`` (loop reference),
        ``"numba"`` (JIT), ``"cupy"`` / ``"torch"`` (GPU, when their
        stacks import), or any registered third-party engine. Exact
        backends are bit-identical by contract; GPU backends keep
        integer outputs exact and float kernels within 1e-9 relative,
        with winning genes re-scored on the scalar oracle — so the
        choice is execution-only and excluded from content keys
        either way. Unknown or unavailable names fail at
        construction.
    sim_engine:
        Name of the cycle-simulator event-wheel engine every replay of
        this config's solutions runs on (see
        :mod:`repro.sim.cycle.engine`): ``"auto"`` (default — fastest
        available), ``"python"`` (object oracle), ``"numpy"``
        (structure-of-arrays flat wheel) or ``"numba"`` (its JIT, when
        numba imports). All engines are ``==``-exact against the
        oracle, so — like ``backend`` — the choice is execution-only
        and excluded from content keys. Unknown or unavailable names
        fail at construction.
    seed:
        Master seed for all stochastic stages.
    """

    total_power: float = 50.0
    params: Optional[HardwareParams] = None

    ratio_rram_choices: Optional[Tuple[float, ...]] = None
    res_rram_choices: Optional[Tuple[int, ...]] = None
    xb_size_choices: Optional[Tuple[int, ...]] = None
    res_dac_choices: Optional[Tuple[int, ...]] = None

    num_wtdup_candidates: int = 30
    sa_initial_temperature: float = 1.0
    sa_min_temperature: float = 1e-2
    sa_cooling_rate: float = 0.9
    sa_steps_per_temp: int = 40
    sa_alpha: float = 0.5

    ea_population_size: int = 16
    ea_offspring_per_gen: int = 16
    ea_max_generations: int = 12
    ea_patience: int = 5

    specialized_macros: bool = True
    enable_macro_sharing: bool = True
    max_blocks_per_layer: int = 8
    jobs: int = 1
    prune_dominated: bool = True
    share_eval_cache: bool = True
    batch_eval: bool = True
    sa_proposal_batch: int = 8
    pareto: bool = False
    objectives: Tuple[str, ...] = DEFAULT_OBJECTIVES
    seed: int = 2024
    tech: str = DEFAULT_TECHNOLOGY
    grid_eval: bool = True
    backend: str = DEFAULT_BACKEND
    sim_engine: str = "auto"

    @property
    def resolved_jobs(self) -> int:
        """The concrete worker count (``jobs == 0`` means all cores)."""
        if self.jobs == 0:
            import os

            return max(1, os.cpu_count() or 1)
        return self.jobs

    def __post_init__(self) -> None:
        if self.total_power <= 0:
            raise ConfigurationError("total_power must be positive")
        # Resolve the device technology: the profile supplies hardware
        # params and any exploration domain the caller left unset, so a
        # config is always fully concrete after construction. An
        # explicitly passed ``params`` object wins over the profile's
        # constants (the sensitivity sweeps perturb profile-derived
        # params this way); ``tech`` stays as the content-key label.
        profile = get_technology(self.tech)
        profile_derived = self.params is None
        if self.params is None:
            self.params = HardwareParams.from_technology(profile)
        if self.ratio_rram_choices is None:
            self.ratio_rram_choices = profile.ratio_rram_choices
        if self.res_rram_choices is None:
            self.res_rram_choices = profile.res_rram_choices
        if self.xb_size_choices is None:
            self.xb_size_choices = profile.xb_size_choices
        if self.res_dac_choices is None:
            self.res_dac_choices = profile.res_dac_choices
        for ratio in self.ratio_rram_choices:
            if not 0.0 < ratio < 1.0:
                raise ConfigurationError(
                    f"RatioRram {ratio} outside (0, 1)"
                )
        for name, choices in (
            ("res_rram_choices", self.res_rram_choices),
            ("xb_size_choices", self.xb_size_choices),
            ("res_dac_choices", self.res_dac_choices),
        ):
            if not choices:
                raise ConfigurationError(f"{name} must be non-empty")
            if any(c <= 0 for c in choices):
                raise ConfigurationError(f"{name} entries must be positive")
        # The grids must be priceable by the technology's tables —
        # otherwise the DSE dies mid-walk with a lookup error.
        for xb in self.xb_size_choices:
            self.params.crossbar_power_of(xb)
        for res in self.res_dac_choices:
            self.params.dac_power_of(res)
        if profile_derived:
            # Profile-derived params: the cell's physics constrains the
            # grid (e.g. SRAM has no multi-bit cells).
            bad = [r for r in self.res_rram_choices
                   if r not in profile.res_rram_choices]
            if bad:
                raise ConfigurationError(
                    f"ResRram choices {bad} not offered by technology "
                    f"{profile.name!r} (cells: "
                    f"{profile.res_rram_choices})"
                )
        if self.num_wtdup_candidates < 1:
            raise ConfigurationError("need at least one WtDup candidate")
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool):
            raise ConfigurationError(
                f"jobs must be an integer, got {self.jobs!r} "
                f"({type(self.jobs).__name__})"
            )
        if self.jobs < 0:
            raise ConfigurationError(
                "jobs must be >= 0 (0 selects one worker per CPU core)"
            )
        if not isinstance(self.batch_eval, bool):
            raise ConfigurationError(
                f"batch_eval must be a bool, got {self.batch_eval!r}"
            )
        if not isinstance(self.grid_eval, bool):
            raise ConfigurationError(
                f"grid_eval must be a bool, got {self.grid_eval!r}"
            )
        # Fail fast on unknown/unavailable backends (a mid-walk lookup
        # error would waste the whole stage-1 filter pass).
        if not isinstance(self.backend, str):
            raise ConfigurationError(
                f"backend must be a registry name, got {self.backend!r}"
            )
        get_backend(self.backend)
        if not isinstance(self.sim_engine, str):
            raise ConfigurationError(
                f"sim_engine must be a registry name, got "
                f"{self.sim_engine!r}"
            )
        # Local import: repro.sim imports the hardware layer, which
        # would cycle back through repro.core at module import time.
        from repro.sim.cycle.engine import get_engine

        get_engine(self.sim_engine)
        if (
            not isinstance(self.sa_proposal_batch, int)
            or isinstance(self.sa_proposal_batch, bool)
            or self.sa_proposal_batch < 1
        ):
            raise ConfigurationError(
                "sa_proposal_batch must be an integer >= 1, got "
                f"{self.sa_proposal_batch!r}"
            )
        if not isinstance(self.pareto, bool):
            raise ConfigurationError(
                f"pareto must be a bool, got {self.pareto!r}"
            )
        objectives = tuple(self.objectives)
        if len(objectives) < 2:
            raise ConfigurationError(
                "objectives needs at least two metrics (a one-metric "
                "front is the scalar EA; use synthesize())"
            )
        if len(set(objectives)) != len(objectives):
            raise ConfigurationError(
                f"objectives has duplicates: {objectives}"
            )
        unknown = [o for o in objectives if o not in OBJECTIVE_SENSES]
        if unknown:
            raise ConfigurationError(
                f"unknown objectives {unknown}; valid: "
                f"{sorted(OBJECTIVE_SENSES)}"
            )
        self.objectives = objectives

    @classmethod
    def fast(cls, total_power: float = 50.0, seed: int = 2024,
             **overrides) -> "SynthesisConfig":
        """A reduced-effort preset that still walks every stage.

        One outer grid point per variable except the two that matter most
        (XbSize and ResDAC keep two values), small SA/EA budgets, and 6
        WtDup candidates. Used by tests and the quicker benches.

        The reduced grids are carved out of the technology profile's
        domains (``overrides`` may carry ``tech``), so the preset is
        valid for every device: a mid-grid RatioRram and cell
        resolution, the two smallest crossbar sizes and DAC
        resolutions. Under the default ``reram`` profile this yields
        exactly the historical ``(0.3,) / (2,) / (128, 256) / (1, 2)``
        preset, keeping fast-config content keys stable.
        """
        profile = get_technology(overrides.get("tech",
                                               DEFAULT_TECHNOLOGY))
        ratios = profile.ratio_rram_choices
        cells = profile.res_rram_choices
        defaults = dict(
            total_power=total_power,
            ratio_rram_choices=(ratios[max(0, len(ratios) - 2)],),
            res_rram_choices=(cells[len(cells) // 2],),
            xb_size_choices=profile.xb_size_choices[:2],
            res_dac_choices=profile.res_dac_choices[:2],
            num_wtdup_candidates=6,
            sa_steps_per_temp=15,
            sa_cooling_rate=0.8,
            ea_population_size=8,
            ea_offspring_per_gen=8,
            ea_max_generations=6,
            ea_patience=3,
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)
