"""Backend-batched population evaluator for the DSE hot path.

The EA of :mod:`repro.optim.evolution` and the DSE executor score one
gene at a time through :meth:`repro.core.macro_partition.
MacroPartitionExplorer.score` — a chain of pure-Python per-layer loops
(gene decode, Eq. 5/6 component allocation, the §IV-B pipeline timing
model). At population scale that is thousands of interpreter
round-trips per EA generation for what is, mathematically, a handful of
elementwise array formulas.

:class:`BatchPerformanceEvaluator` evaluates a whole population of
macro-partition genes in one pass: geometries, workloads and every
other gene-independent quantity are precomputed once per (spec, budget,
ResDAC) context into a :class:`repro.core.backend.PopulationContext`,
and the per-gene work — group sizing, fixed overhead, the Eq. 6
balanced delay, the ADC-sharing post-pass, stage times, the
fine-grained pipeline latency and the power account — runs as one fused
:meth:`repro.core.backend.ArrayBackend.score_population` kernel on the
configured array backend (``SynthesisConfig.backend``): vectorized
numpy by default, pure-Python loops as the oracle, the same loops
numba-JIT'd, or a GPU engine (cupy / torch) when available.

Exactness contract
------------------
The batched path is a drop-in replacement for the scalar oracle, not an
approximation: every formula is evaluated with the *same operation
order* as the scalar code (`allocate_components` /
``PerformanceEvaluator.evaluate``), and IEEE-754 float64 arithmetic is
deterministic, so batched metrics are bit-identical to the scalar ones
wherever the scalar path is defined — on every *exact* backend
(numpy / python / numba). Cross-layer reductions that the scalar code
performs as ordered Python sums are likewise accumulated in layer
order. GPU backends are held to the documented 1e-9 relative tolerance
on float kernels (integer outputs stay exact), and full synthesis still
reports bit-identical solutions because the explorer re-scores the
winning gene through the scalar oracle.
``tests/test_batch_eval_differential.py`` pins the scalar contract
across the entire model zoo, ``tests/test_batch_eval_backend_
differential.py`` pins it per backend, and full synthesis selects the
identical solution with ``SynthesisConfig.batch_eval`` on or off.

Genes that the scalar path rejects with :class:`InfeasibleError`
(fixed overhead exceeding the peripheral budget, a collapsed
identical-macro budget) simply score ``0.0`` — the same fitness the
explorer assigns them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

# The numpy gate is shared with every tensorized path (grid_eval, the
# array backends) through repro.core.backend — one switch to stub or
# monkeypatch, not three. Call sites bind `np = numpy_module()` live
# (never a module-level snapshot) so patching the gate reaches every
# method uniformly. This module never imports numpy directly (an AST
# guard in tests/test_backend_conformance.py enforces that).
from repro.core.backend import (
    DEFAULT_BACKEND,
    PopulationContext,
    get_backend,
    numpy_module,
)

from repro.core.component_alloc import (
    fixed_overhead_power,
    layer_workloads,
)
from repro.core.evaluator import PerformanceEvaluator
from repro.errors import ConfigurationError
from repro.hardware.crossbar import required_adc_resolution
from repro.hardware.power import PowerBudget
from repro.ir.builder import DataflowBuilder, DataflowSpec
from repro.nn.workload import model_macs

Gene = Tuple[int, ...]

_ENCODING_BASE = 1000  # keep in sync with repro.core.macro_partition


def numpy_available() -> bool:
    """True when the vectorized engine can run on this interpreter.

    Delegates to :func:`repro.core.backend.numpy_available` — the
    single gate shared by every tensorized path.
    """
    return numpy_module() is not None


@dataclass
class BatchEvaluation:
    """Population-wide metric arrays (one entry per gene, in order).

    ``feasible`` marks genes the scalar path evaluates successfully;
    every metric of an infeasible gene is ``0.0``, matching the fitness
    the explorer assigns when :class:`repro.errors.InfeasibleError` is
    raised. Field meanings mirror :class:`repro.core.evaluator.
    EvaluationResult`.
    """

    feasible: "object"  # (P,) bool ndarray
    fitness: "object"  # (P,) float ndarray — EA fitness (img/s)
    period: "object"
    latency: "object"
    throughput: "object"
    tops: "object"
    power: "object"
    tops_per_watt: "object"
    energy_per_image: "object"
    edp: "object"
    bottleneck_layer: "object"  # (P,) int ndarray (-1 when infeasible)
    num_macros: "object"  # (P,) int ndarray (0 when infeasible)

    def __len__(self) -> int:
        return int(self.fitness.shape[0])


class BatchPerformanceEvaluator:
    """Scores whole gene populations for one (spec, budget, ResDAC).

    Parameters mirror the knobs :meth:`MacroPartitionExplorer.score`
    reads from :class:`repro.core.config.SynthesisConfig`:

    enable_macro_sharing:
        Apply rule-b sharing pairs (the scalar path passes ``()`` as
        ``sharing_pairs`` when disabled).
    identical_macros:
        Use the §V-C2 identical-macro allocation (the scalar
        ``identical_macros=not config.specialized_macros``).
    backend:
        Array-execution engine name (or instance) from
        :mod:`repro.core.backend` — governs *how* populations are
        scored, never what they score (execution-only, like
        ``SynthesisConfig.backend`` it is threaded from).
    """

    def __init__(
        self,
        spec: DataflowSpec,
        budget: PowerBudget,
        res_dac: int,
        enable_macro_sharing: bool = True,
        identical_macros: bool = False,
        overlap_window: int = 4,
        backend: "object" = DEFAULT_BACKEND,
    ) -> None:
        if numpy_module() is None:  # pragma: no cover - defensive gate
            raise ConfigurationError(
                "numpy is required for batched evaluation; set "
                "SynthesisConfig.batch_eval=False to use the scalar "
                "engine"
            )
        self.spec = spec
        self.budget = budget
        self.res_dac = res_dac
        self.enable_macro_sharing = enable_macro_sharing
        self.identical_macros = identical_macros
        self.overlap_window = overlap_window
        self.backend = get_backend(backend)
        self._precompute()

    # ------------------------------------------------------------------
    # Gene-independent context (computed once per evaluator)
    # ------------------------------------------------------------------
    @property
    def context(self) -> PopulationContext:
        """The gene-independent scoring context handed to the backend
        (one per evaluator; the conformance tier scores it through
        every registered backend)."""
        return self._ctx

    def _precompute(self) -> None:
        np = numpy_module()
        spec = self.spec
        params = spec.params
        budget = self.budget
        geos = spec.geometries
        n = len(geos)
        self.num_layers = n

        # The scalar oracle's own helpers supply every per-layer scalar,
        # so a model change propagates here automatically.
        oracle = PerformanceEvaluator(spec, budget)
        act_bytes = oracle._bytes_per_activation()
        mvm = np.array(
            [oracle._mvm_time(geo) for geo in geos], dtype=np.float64
        )
        # load/store numerators exactly as _memory_times composes them:
        # ((total_blocks * inputs_per_block) * act_bytes) / bandwidth.
        load_num = np.array(
            [geo.total_blocks * geo.inputs_per_block * act_bytes
             for geo in geos],
            dtype=np.float64,
        )
        store_num = np.array(
            [geo.total_blocks * geo.outputs_per_block * act_bytes
             for geo in geos],
            dtype=np.float64,
        )
        total_blocks = np.array(
            [geo.total_blocks for geo in geos], dtype=np.int64
        )
        row_tiles = np.array(
            [geo.row_tiles for geo in geos], dtype=np.int64
        )
        merge_rounds = np.array(
            [math.ceil(math.log2(geo.row_tiles)) if geo.row_tiles > 1
             else 0 for geo in geos],
            dtype=np.int64,
        )
        per_round_num = np.array(
            [geo.outputs_per_block * act_bytes for geo in geos],
            dtype=np.float64,
        )
        out_bytes = np.array(
            [geo.out_positions * geo.cols * act_bytes for geo in geos],
            dtype=np.float64,
        )

        # Eq. 5 workloads and the Eq. 6 denominator (all gene-free).
        bits = spec.bits
        adc_wl, alu_wl = layer_workloads(geos, spec.model, bits)
        xb_size = budget.xb_size
        adc_lo, adc_hi = params.adc_resolution_range
        adc_resolutions = [
            required_adc_resolution(
                min(xb_size, geo.rows), budget.res_rram, self.res_dac,
                min_resolution=adc_lo, max_resolution=adc_hi,
            )
            for geo in geos
        ]
        adc_powers = [
            params.adc_power_of(r) for r in adc_resolutions
        ]
        adc_rate = params.adc_sample_rate
        alu_rate = params.alu_frequency
        # Ordered Python sums, identical to allocate_components.
        denom = sum(
            p * wl / adc_rate for p, wl in zip(adc_powers, adc_wl)
        ) + sum(
            params.alu_power * wl / alu_rate for wl in alu_wl
        )

        # Fixed-overhead constants, composed exactly as
        # fixed_overhead_power does: fixed == total_macros * per_macro
        # + total_crossbars * per_crossbar. The differential suite pins
        # this against the real function, so a power-model change there
        # cannot silently diverge from the batched copy.
        per_macro_fixed = (
            params.edram_power + params.noc_power
            + params.register_power_per_macro
        )
        per_crossbar = xb_size * (
            params.dac_power_of(self.res_dac) + params.sample_hold_power
        )
        total_crossbars = sum(geo.crossbars for geo in geos)
        crossbar_fixed = total_crossbars * per_crossbar
        assert fixed_overhead_power(
            geos, [[0]] * n, params, xb_size, self.res_dac
        ) == 1 * per_macro_fixed + crossbar_fixed

        # Identical-macro constants (§V-C2).
        max_resolution = max(adc_resolutions)
        adc_power_unit = params.adc_power_of(max_resolution)

        # Communication / pipeline structure, flattened to the CSR
        # walks the backend kernels consume. Producer-major order for
        # transfers (the §IV-B accumulation order), consumer-major for
        # the latency forward pass — both preserve the exact iteration
        # order of spec.model.interlayer_edges().
        consumer_lists = {}
        producer_of = {}
        for producer, consumer in spec.model.interlayer_edges():
            consumer_lists.setdefault(producer, []).append(consumer)
            producer_of.setdefault(consumer, []).append(producer)
        builder = DataflowBuilder(spec)
        fraction = {}
        for consumer, producers in producer_of.items():
            for producer in producers:
                first_needed = builder.producer_block_for(
                    geos[producer], geos[consumer], 0
                )
                fraction[(producer, consumer)] = (
                    (first_needed + 1) / geos[producer].total_blocks
                )
        comm_offsets = np.zeros(n + 1, dtype=np.int64)
        comm_consumer: List[int] = []
        for producer in range(n):
            comm_consumer.extend(consumer_lists.get(producer, []))
            comm_offsets[producer + 1] = len(comm_consumer)
        lat_offsets = np.zeros(n + 1, dtype=np.int64)
        lat_producer: List[int] = []
        lat_fraction: List[float] = []
        for idx in range(n):
            for producer in producer_of.get(idx, []):
                lat_producer.append(producer)
                lat_fraction.append(fraction[(producer, idx)])
            lat_offsets[idx + 1] = len(lat_producer)

        # Power account scalars.
        used_crossbars = sum(g.crossbars for g in geos)
        rram_power = used_crossbars * params.crossbar_power_of(xb_size)
        macs2 = 2.0 * model_macs(spec.model)

        self._ctx = PopulationContext(
            mvm=mvm,
            load_num=load_num,
            store_num=store_num,
            total_blocks=total_blocks,
            row_tiles=row_tiles,
            merge_rounds=merge_rounds,
            per_round_num=per_round_num,
            out_bytes=out_bytes,
            adc_wl=np.array(adc_wl, dtype=np.float64),
            alu_wl=np.array(alu_wl, dtype=np.float64),
            adc_powers=np.array(adc_powers, dtype=np.float64),
            comm_offsets=comm_offsets,
            comm_consumer=np.asarray(comm_consumer, dtype=np.int64),
            lat_offsets=lat_offsets,
            lat_producer=np.asarray(lat_producer, dtype=np.int64),
            lat_fraction=np.asarray(lat_fraction, dtype=np.float64),
            denom=denom,
            per_macro_fixed=per_macro_fixed,
            crossbar_fixed=crossbar_fixed,
            peripheral_power=budget.peripheral_power,
            adc_rate=adc_rate,
            alu_rate=alu_rate,
            alu_power=params.alu_power,
            adc_power_unit=adc_power_unit,
            edram_bandwidth=params.edram_bandwidth,
            noc_port_bandwidth=params.noc_port_bandwidth,
            noc_hop_latency=params.noc_hop_latency,
            rram_power=rram_power,
            macs2=macs2,
            overlap_window=self.overlap_window,
            enable_macro_sharing=self.enable_macro_sharing,
            identical_macros=self.identical_macros,
        )

    # ------------------------------------------------------------------
    # Gene validation (host-side; the kernels assume well-formed genes)
    # ------------------------------------------------------------------
    def _validate_population(self, genes_arr) -> None:
        """Validates like ``decode_gene`` / ``MacroPartition.
        from_gene``; raises :class:`ConfigurationError` so malformed
        genes fail identically on every backend."""
        np = numpy_module()
        owners, counts = np.divmod(genes_arr, _ENCODING_BASE)
        layer_idx = np.arange(self.num_layers, dtype=np.int64)
        if np.any(counts < 1):
            raise ConfigurationError("batch decode: #macros < 1")
        if np.any(owners > layer_idx[None, :]):
            raise ConfigurationError("batch decode: owner > layer index")
        # Every referenced owner must own itself (pairs only, rule b).
        owner_of_owner = np.take_along_axis(owners, owners, axis=1)
        if np.any(owner_of_owner != owners):
            raise ConfigurationError(
                "batch decode: layer shares with a non-owner"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate_population(
        self, genes: Sequence[Gene]
    ) -> BatchEvaluation:
        """Score every gene; metrics are 0.0 where infeasible."""
        np = numpy_module()
        if len(genes) == 0:
            empty = np.zeros(0, dtype=np.float64)
            return BatchEvaluation(
                feasible=np.zeros(0, dtype=bool), fitness=empty,
                period=empty, latency=empty, throughput=empty,
                tops=empty, power=empty, tops_per_watt=empty,
                energy_per_image=empty, edp=empty,
                bottleneck_layer=np.zeros(0, dtype=np.int64),
                num_macros=np.zeros(0, dtype=np.int64),
            )
        genes_arr = np.asarray(genes, dtype=np.int64)
        if genes_arr.ndim != 2 or genes_arr.shape[1] != self.num_layers:
            raise ConfigurationError(
                f"population shape {genes_arr.shape} does not match "
                f"{self.num_layers} layers"
            )
        self._validate_population(genes_arr)
        scores = self.backend.score_population(self._ctx, genes_arr)
        return BatchEvaluation(
            feasible=scores.feasible,
            fitness=scores.fitness,
            period=scores.period,
            latency=scores.latency,
            throughput=scores.throughput,
            tops=scores.tops,
            power=scores.power,
            tops_per_watt=scores.tops_per_watt,
            energy_per_image=scores.energy_per_image,
            edp=scores.edp,
            bottleneck_layer=scores.bottleneck_layer,
            num_macros=scores.num_macros,
        )

    def fitness_of(self, genes: Sequence[Gene]) -> List[float]:
        """EA-facing adapter: population fitness as plain floats."""
        return [float(f) for f in self.evaluate_population(genes).fitness]
