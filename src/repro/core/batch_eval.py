"""Numpy-batched population evaluator for the DSE hot path.

The EA of :mod:`repro.optim.evolution` and the DSE executor score one
gene at a time through :meth:`repro.core.macro_partition.
MacroPartitionExplorer.score` — a chain of pure-Python per-layer loops
(gene decode, Eq. 5/6 component allocation, the §IV-B pipeline timing
model). At population scale that is thousands of interpreter
round-trips per EA generation for what is, mathematically, a handful of
elementwise array formulas.

:class:`BatchPerformanceEvaluator` evaluates a whole population of
macro-partition genes in one pass: geometries, workloads and every
other gene-independent quantity are precomputed once per (spec, budget,
ResDAC) context, and the per-gene work — group sizing, fixed overhead,
the Eq. 6 balanced delay, the ADC-sharing post-pass, stage times, the
fine-grained pipeline latency and the power account — becomes a few
vector operations over ``(population, layers)`` arrays.

Exactness contract
------------------
The batched path is a drop-in replacement for the scalar oracle, not an
approximation: every formula is evaluated with the *same operation
order* as the scalar code (`allocate_components` /
``PerformanceEvaluator.evaluate``), and IEEE-754 float64 arithmetic is
deterministic, so batched metrics are bit-identical to the scalar ones
wherever the scalar path is defined. Cross-layer reductions that the
scalar code performs as ordered Python sums are likewise accumulated in
layer order here. ``tests/test_batch_eval_differential.py`` pins this
contract across the entire model zoo, and full synthesis selects the
identical solution with ``SynthesisConfig.batch_eval`` on or off.

Genes that the scalar path rejects with :class:`InfeasibleError`
(fixed overhead exceeding the peripheral budget, a collapsed
identical-macro budget) simply score ``0.0`` — the same fitness the
explorer assigns them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

# The numpy gate is shared with every tensorized path (grid_eval, the
# array backends) through repro.core.backend — one switch to stub or
# monkeypatch, not three. Call sites bind `np = numpy_module()` live
# (never a module-level snapshot) so patching the gate reaches every
# method uniformly.
from repro.core.backend import numpy_module

from repro.core.component_alloc import (
    fixed_overhead_power,
    layer_workloads,
)
from repro.core.evaluator import PerformanceEvaluator
from repro.errors import ConfigurationError
from repro.hardware.crossbar import required_adc_resolution
from repro.hardware.power import PowerBudget
from repro.ir.builder import DataflowBuilder, DataflowSpec
from repro.nn.workload import model_macs

Gene = Tuple[int, ...]

_ENCODING_BASE = 1000  # keep in sync with repro.core.macro_partition


def numpy_available() -> bool:
    """True when the vectorized engine can run on this interpreter.

    Delegates to :func:`repro.core.backend.numpy_available` — the
    single gate shared by every tensorized path.
    """
    return numpy_module() is not None


@dataclass
class BatchEvaluation:
    """Population-wide metric arrays (one entry per gene, in order).

    ``feasible`` marks genes the scalar path evaluates successfully;
    every metric of an infeasible gene is ``0.0``, matching the fitness
    the explorer assigns when :class:`repro.errors.InfeasibleError` is
    raised. Field meanings mirror :class:`repro.core.evaluator.
    EvaluationResult`.
    """

    feasible: "object"  # (P,) bool ndarray
    fitness: "object"  # (P,) float ndarray — EA fitness (img/s)
    period: "object"
    latency: "object"
    throughput: "object"
    tops: "object"
    power: "object"
    tops_per_watt: "object"
    energy_per_image: "object"
    edp: "object"
    bottleneck_layer: "object"  # (P,) int ndarray (-1 when infeasible)
    num_macros: "object"  # (P,) int ndarray (0 when infeasible)

    def __len__(self) -> int:
        return int(self.fitness.shape[0])


class BatchPerformanceEvaluator:
    """Scores whole gene populations for one (spec, budget, ResDAC).

    Parameters mirror the knobs :meth:`MacroPartitionExplorer.score`
    reads from :class:`repro.core.config.SynthesisConfig`:

    enable_macro_sharing:
        Apply rule-b sharing pairs (the scalar path passes ``()`` as
        ``sharing_pairs`` when disabled).
    identical_macros:
        Use the §V-C2 identical-macro allocation (the scalar
        ``identical_macros=not config.specialized_macros``).
    """

    def __init__(
        self,
        spec: DataflowSpec,
        budget: PowerBudget,
        res_dac: int,
        enable_macro_sharing: bool = True,
        identical_macros: bool = False,
        overlap_window: int = 4,
    ) -> None:
        if numpy_module() is None:  # pragma: no cover - defensive gate
            raise ConfigurationError(
                "numpy is required for batched evaluation; set "
                "SynthesisConfig.batch_eval=False to use the scalar "
                "engine"
            )
        self.spec = spec
        self.budget = budget
        self.res_dac = res_dac
        self.enable_macro_sharing = enable_macro_sharing
        self.identical_macros = identical_macros
        self.overlap_window = overlap_window
        self._precompute()

    # ------------------------------------------------------------------
    # Gene-independent context (computed once per evaluator)
    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        np = numpy_module()
        spec = self.spec
        params = spec.params
        budget = self.budget
        geos = spec.geometries
        n = len(geos)
        self.num_layers = n

        # The scalar oracle's own helpers supply every per-layer scalar,
        # so a model change propagates here automatically.
        oracle = PerformanceEvaluator(spec, budget)
        act_bytes = oracle._bytes_per_activation()
        self._mvm = np.array(
            [oracle._mvm_time(geo) for geo in geos], dtype=np.float64
        )
        # load/store numerators exactly as _memory_times composes them:
        # ((total_blocks * inputs_per_block) * act_bytes) / bandwidth.
        self._load_num = np.array(
            [geo.total_blocks * geo.inputs_per_block * act_bytes
             for geo in geos],
            dtype=np.float64,
        )
        self._store_num = np.array(
            [geo.total_blocks * geo.outputs_per_block * act_bytes
             for geo in geos],
            dtype=np.float64,
        )
        self._total_blocks = np.array(
            [geo.total_blocks for geo in geos], dtype=np.int64
        )
        self._row_tiles = np.array(
            [geo.row_tiles for geo in geos], dtype=np.int64
        )
        self._merge_rounds = np.array(
            [math.ceil(math.log2(geo.row_tiles)) if geo.row_tiles > 1
             else 0 for geo in geos],
            dtype=np.int64,
        )
        self._per_round_num = np.array(
            [geo.outputs_per_block * act_bytes for geo in geos],
            dtype=np.float64,
        )
        self._out_bytes = np.array(
            [geo.out_positions * geo.cols * act_bytes for geo in geos],
            dtype=np.float64,
        )

        # Eq. 5 workloads and the Eq. 6 denominator (all gene-free).
        bits = spec.bits
        adc_wl, alu_wl = layer_workloads(geos, spec.model, bits)
        self._adc_wl = np.array(adc_wl, dtype=np.float64)
        self._alu_wl = np.array(alu_wl, dtype=np.float64)
        xb_size = budget.xb_size
        adc_lo, adc_hi = params.adc_resolution_range
        self._adc_resolutions = [
            required_adc_resolution(
                min(xb_size, geo.rows), budget.res_rram, self.res_dac,
                min_resolution=adc_lo, max_resolution=adc_hi,
            )
            for geo in geos
        ]
        adc_powers = [
            params.adc_power_of(r) for r in self._adc_resolutions
        ]
        self._adc_powers = np.array(adc_powers, dtype=np.float64)
        self._adc_rate = params.adc_sample_rate
        self._alu_rate = params.alu_frequency
        self._alu_power = params.alu_power
        # Ordered Python sums, identical to allocate_components.
        self._denom = sum(
            p * wl / self._adc_rate for p, wl in zip(adc_powers, adc_wl)
        ) + sum(
            params.alu_power * wl / self._alu_rate for wl in alu_wl
        )

        # Fixed-overhead constants, composed exactly as
        # fixed_overhead_power does: fixed == total_macros * per_macro
        # + total_crossbars * per_crossbar. The differential suite pins
        # this against the real function, so a power-model change there
        # cannot silently diverge from the batched copy.
        self._per_macro_fixed = (
            params.edram_power + params.noc_power
            + params.register_power_per_macro
        )
        per_crossbar = xb_size * (
            params.dac_power_of(self.res_dac) + params.sample_hold_power
        )
        total_crossbars = sum(geo.crossbars for geo in geos)
        self._crossbar_fixed = total_crossbars * per_crossbar
        assert fixed_overhead_power(
            geos, [[0]] * n, params, xb_size, self.res_dac
        ) == 1 * self._per_macro_fixed + self._crossbar_fixed
        self._peripheral_power = budget.peripheral_power

        # Identical-macro constants (§V-C2).
        self._max_resolution = max(self._adc_resolutions)
        self._adc_power_unit = params.adc_power_of(self._max_resolution)

        # Communication / pipeline structure.
        self._edram_bandwidth = params.edram_bandwidth
        self._noc_port_bandwidth = params.noc_port_bandwidth
        self._noc_hop_latency = params.noc_hop_latency
        self._consumer_lists: Dict[int, List[int]] = {}
        producer_of: Dict[int, List[int]] = {}
        for producer, consumer in spec.model.interlayer_edges():
            self._consumer_lists.setdefault(producer, []).append(consumer)
            producer_of.setdefault(consumer, []).append(producer)
        self._producer_of = producer_of
        builder = DataflowBuilder(spec)
        self._fraction: Dict[Tuple[int, int], float] = {}
        for consumer, producers in producer_of.items():
            for producer in producers:
                first_needed = builder.producer_block_for(
                    geos[producer], geos[consumer], 0
                )
                self._fraction[(producer, consumer)] = (
                    (first_needed + 1) / geos[producer].total_blocks
                )

        # Power account scalars.
        used_crossbars = sum(g.crossbars for g in geos)
        self._rram_power = used_crossbars * params.crossbar_power_of(
            xb_size
        )
        self._macs2 = 2.0 * model_macs(spec.model)

    # ------------------------------------------------------------------
    # Gene decoding and macro-group assignment
    # ------------------------------------------------------------------
    def _decode(self, genes_arr):
        """(owners, counts) plus derived group arrays; validates like
        ``decode_gene`` / ``MacroPartition.from_gene``."""
        np = numpy_module()
        owners, counts = np.divmod(genes_arr, _ENCODING_BASE)
        layer_idx = np.arange(self.num_layers, dtype=np.int64)
        if np.any(counts < 1):
            raise ConfigurationError("batch decode: #macros < 1")
        if np.any(owners > layer_idx[None, :]):
            raise ConfigurationError("batch decode: owner > layer index")
        # Every referenced owner must own itself (pairs only, rule b).
        owner_of_owner = np.take_along_axis(owners, owners, axis=1)
        if np.any(owner_of_owner != owners):
            raise ConfigurationError(
                "batch decode: layer shares with a non-owner"
            )
        is_owner = owners == layer_idx[None, :]
        sizes = np.where(is_owner, counts, 0)
        # Owner groups are contiguous id ranges in layer order, exactly
        # as MacroPartition.from_gene assigns them.
        group_starts_by_owner = np.cumsum(sizes, axis=1) - sizes
        total_macros = sizes.sum(axis=1)
        group_start = np.take_along_axis(
            group_starts_by_owner, owners, axis=1
        )
        group_len = np.take_along_axis(counts, owners, axis=1)
        return owners, is_owner, total_macros, group_start, group_len

    @staticmethod
    def _hops(a, b, cols):
        """Vectorized MeshNoC.hops: Manhattan distance on the row-major
        near-square mesh (per-gene column count)."""
        np = numpy_module()
        return np.abs(a // cols - b // cols) + np.abs(
            a % cols - b % cols
        )

    # ------------------------------------------------------------------
    # Eq. 5/6 component allocation, vectorized
    # ------------------------------------------------------------------
    def _allocate(self, owners, is_owner, total_macros, group_len):
        """Per-gene allocation arrays: (feasible, fixed, adc_alu_power,
        adc_delay, alu_delay)."""
        np = numpy_module()
        pop, n = owners.shape
        fixed = (
            total_macros.astype(np.float64) * self._per_macro_fixed
            + self._crossbar_fixed
        )
        available = self._peripheral_power - fixed
        feasible = available > 0.0

        if self.identical_macros:
            return self._allocate_identical(
                feasible, fixed, available, group_len, total_macros
            )
        if self._denom <= 0:
            # Gene-independent: the scalar path raises for every gene.
            feasible = np.zeros(pop, dtype=bool)

        with np.errstate(all="ignore"):
            balanced_delay = self._denom / available
            adc_alloc = self._adc_wl[None, :] / (
                self._adc_rate * balanced_delay
            )[:, None]
            alu_alloc = self._alu_wl[None, :] / (
                self._alu_rate * balanced_delay
            )[:, None]

            # Sharing post-pass (rule b): per sharer layer i, in
            # ascending i order — the exact pair order the scalar code
            # receives from MacroPartition.from_gene.
            savings = np.zeros(pop, dtype=np.float64)
            partner = np.full((pop, n), -1, dtype=np.int64)
            if self.enable_macro_sharing:
                rows = np.arange(pop)
                for i in range(n):
                    sharer = ~is_owner[:, i]
                    if not sharer.any():
                        continue
                    j = owners[:, i]
                    a_i = adc_alloc[:, i]
                    a_j = adc_alloc[rows, j]
                    p_i = self._adc_powers[i]
                    p_j = self._adc_powers[j]
                    bank = np.maximum(a_j, a_i)
                    unit = np.maximum(p_j, p_i)
                    separate = p_j * a_j + p_i * a_i
                    merged = unit * bank
                    include = sharer & (merged < separate)
                    savings = np.where(
                        include, savings + (separate - merged), savings
                    )
                    partner[:, i] = np.where(include, j, partner[:, i])
                    prev = partner[rows, j]
                    partner[rows, j] = np.where(include, i, prev)

            apply_scale = (savings > 0.0) & (savings < available)
            scale = np.where(
                apply_scale,
                available / np.where(
                    apply_scale, available - savings, 1.0
                ),
                1.0,
            )

            has_partner = partner >= 0
            partner_idx = np.where(has_partner, partner, 0)
            partner_alloc = np.take_along_axis(
                adc_alloc, partner_idx, axis=1
            )
            bank = np.maximum(adc_alloc, partner_alloc) * scale[:, None]
            layer_idx = np.arange(n, dtype=np.int64)
            distance = np.abs(layer_idx[None, :] - partner_idx)
            overlap = np.maximum(
                0.0, 1.0 - distance / max(1, self.overlap_window)
            )
            effective_adc = np.where(
                has_partner,
                bank / (1.0 + overlap),
                adc_alloc * scale[:, None],
            )
            effective_alu = alu_alloc * scale[:, None]
            adc_delay = self._adc_wl[None, :] / (
                self._adc_rate * effective_adc
            )
            alu_delay = self._alu_wl[None, :] / (
                self._alu_rate * effective_alu
            )

            # Power drawn: shared banks counted once, at the pair's
            # first (owner-side) index; ordered accumulation matches the
            # scalar loop.
            adc_power_used = np.zeros(pop, dtype=np.float64)
            rows = np.arange(pop)
            for l in range(n):
                hp = has_partner[:, l]
                pidx = partner_idx[:, l]
                term_solo = (
                    self._adc_powers[l] * adc_alloc[:, l]
                ) * scale
                bank_l = np.maximum(
                    adc_alloc[:, l], adc_alloc[rows, pidx]
                ) * scale
                term_pair = np.maximum(
                    self._adc_powers[l], self._adc_powers[pidx]
                ) * bank_l
                count_here = ~hp | (l < pidx)
                term = np.where(hp, term_pair, term_solo)
                adc_power_used = np.where(
                    count_here, adc_power_used + term, adc_power_used
                )
            alu_power_used = np.zeros(pop, dtype=np.float64)
            for l in range(n):
                alu_power_used = alu_power_used + (
                    self._alu_power * alu_alloc[:, l]
                ) * scale
            adc_alu_power = adc_power_used + alu_power_used
        return feasible, fixed, adc_alu_power, adc_delay, alu_delay

    def _allocate_identical(
        self, feasible, fixed, available, group_len, total_macros
    ):
        """Vectorized ``_allocate_identical`` (§V-C2 baseline)."""
        np = numpy_module()
        with np.errstate(all="ignore"):
            macro_count = group_len  # every group has >= 1 macro
            adc_demand = np.max(
                self._adc_wl[None, :] / macro_count, axis=1
            )
            alu_demand = np.max(
                self._alu_wl[None, :] / macro_count, axis=1
            )
            adc_share_weight = (
                self._adc_power_unit * adc_demand / self._adc_rate
            )
            alu_share_weight = (
                self._alu_power * alu_demand / self._alu_rate
            )
            weight_sum = adc_share_weight + alu_share_weight
            feasible = feasible & (weight_sum > 0.0)
            adc_power_total = available * adc_share_weight / weight_sum
            alu_power_total = available * alu_share_weight / weight_sum
            per_macro_adc = adc_power_total / (
                total_macros * self._adc_power_unit
            )
            per_macro_alu = alu_power_total / (
                total_macros * self._alu_power
            )
            feasible = feasible & (per_macro_adc > 0.0) & (
                per_macro_alu > 0.0
            )
            bank = per_macro_adc[:, None] * macro_count
            lanes = per_macro_alu[:, None] * macro_count
            adc_delay = self._adc_wl[None, :] / (self._adc_rate * bank)
            alu_delay = self._alu_wl[None, :] / (self._alu_rate * lanes)
            adc_alu_power = adc_power_total + alu_power_total
        return feasible, fixed, adc_alu_power, adc_delay, alu_delay

    # ------------------------------------------------------------------
    # §IV-B timing model, vectorized
    # ------------------------------------------------------------------
    def _stage_times(
        self, owners, total_macros, group_start, group_len,
        adc_delay, alu_delay,
    ):
        """(P, L) per-layer pipelined stage maxima (LayerTiming.total)."""
        np = numpy_module()
        pop, n = owners.shape
        with np.errstate(all="ignore"):
            bandwidth = self._edram_bandwidth * group_len
            load = self._load_num[None, :] / bandwidth
            store = self._store_num[None, :] / bandwidth

            comm = np.zeros((pop, n), dtype=np.float64)
            cols = np.maximum(
                1,
                np.ceil(np.sqrt(np.maximum(1, total_macros))).astype(
                    np.int64
                ),
            )
            # Partial-sum merge for row-tiled layers spanning macros.
            for l in range(n):
                if self._row_tiles[l] <= 1:
                    continue
                multi = group_len[:, l] > 1
                if not multi.any():
                    continue
                start = group_start[:, l]
                neighbor = self._hops(start, start + 1, cols)
                per_round_bytes = self._per_round_num[l] / group_len[:, l]
                per_block = self._merge_rounds[l] * (
                    per_round_bytes / self._noc_port_bandwidth
                    + np.maximum(1, neighbor) * self._noc_hop_latency
                )
                merge_time = self._total_blocks[l] * per_block
                comm[:, l] = np.where(
                    multi, comm[:, l] + merge_time, comm[:, l]
                )
            # Activation transfers, per inter-layer edge in model order.
            for producer in range(n):
                for consumer in self._consumer_lists.get(producer, []):
                    same = owners[:, producer] == owners[:, consumer]
                    s0 = group_start[:, producer]
                    s1 = s0 + group_len[:, producer] - 1
                    d0 = group_start[:, consumer]
                    d1 = d0 + group_len[:, consumer] - 1
                    hops = np.minimum(
                        np.minimum(
                            self._hops(s0, d0, cols),
                            self._hops(s1, d0, cols),
                        ),
                        np.minimum(
                            self._hops(s0, d1, cols),
                            self._hops(s1, d1, cols),
                        ),
                    )
                    ports = np.minimum(
                        group_len[:, producer], group_len[:, consumer]
                    )
                    serialization = self._out_bytes[producer] / (
                        self._noc_port_bandwidth * ports
                    )
                    head = (
                        self._total_blocks[producer] * hops
                    ) * self._noc_hop_latency
                    comm[:, producer] = np.where(
                        same,
                        comm[:, producer],
                        comm[:, producer] + (serialization + head),
                    )

            stage_total = np.maximum(
                self._mvm[None, :], adc_delay
            )
            stage_total = np.maximum(stage_total, alu_delay)
            stage_total = np.maximum(stage_total, load)
            stage_total = np.maximum(stage_total, store)
            stage_total = np.maximum(stage_total, comm)
        return stage_total

    def _latency(self, stage_total):
        """Fine-grained pipeline latency (vectorized forward pass)."""
        np = numpy_module()
        pop, n = stage_total.shape
        starts = np.zeros((pop, n), dtype=np.float64)
        ends = np.zeros((pop, n), dtype=np.float64)
        for idx in range(n):
            start = np.zeros(pop, dtype=np.float64)
            for producer in self._producer_of.get(idx, []):
                fraction = self._fraction[(producer, idx)]
                start = np.maximum(
                    start,
                    starts[:, producer]
                    + stage_total[:, producer] * fraction,
                )
            starts[:, idx] = start
            ends[:, idx] = start + stage_total[:, idx]
        return ends.max(axis=1) if n else np.zeros(pop)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate_population(
        self, genes: Sequence[Gene]
    ) -> BatchEvaluation:
        """Score every gene; metrics are 0.0 where infeasible."""
        np = numpy_module()
        if len(genes) == 0:
            empty = np.zeros(0, dtype=np.float64)
            return BatchEvaluation(
                feasible=np.zeros(0, dtype=bool), fitness=empty,
                period=empty, latency=empty, throughput=empty,
                tops=empty, power=empty, tops_per_watt=empty,
                energy_per_image=empty, edp=empty,
                bottleneck_layer=np.zeros(0, dtype=np.int64),
                num_macros=np.zeros(0, dtype=np.int64),
            )
        genes_arr = np.asarray(genes, dtype=np.int64)
        if genes_arr.ndim != 2 or genes_arr.shape[1] != self.num_layers:
            raise ConfigurationError(
                f"population shape {genes_arr.shape} does not match "
                f"{self.num_layers} layers"
            )
        owners, is_owner, total_macros, group_start, group_len = (
            self._decode(genes_arr)
        )
        feasible, fixed, adc_alu_power, adc_delay, alu_delay = (
            self._allocate(owners, is_owner, total_macros, group_len)
        )
        with np.errstate(all="ignore"):
            stage_total = self._stage_times(
                owners, total_macros, group_start, group_len,
                adc_delay, alu_delay,
            )
            period = stage_total.max(axis=1)
            bottleneck = np.argmax(stage_total, axis=1)
            latency = self._latency(stage_total)
            power = self._rram_power + (fixed + adc_alu_power)
            throughput = 1.0 / period
            tops = self._macs2 / period / 1e12
            tops_per_watt = np.where(power > 0, tops / power, 0.0)
            energy = power * latency
            edp = energy * latency

        def _mask(values):
            return np.where(feasible, values, 0.0)

        return BatchEvaluation(
            feasible=feasible,
            fitness=_mask(throughput),
            period=_mask(period),
            latency=_mask(latency),
            throughput=_mask(throughput),
            tops=_mask(tops),
            power=_mask(power),
            tops_per_watt=_mask(tops_per_watt),
            energy_per_image=_mask(energy),
            edp=_mask(edp),
            bottleneck_layer=np.where(feasible, bottleneck, -1),
            num_macros=np.where(feasible, total_macros, 0),
        )

    def fitness_of(self, genes: Sequence[Gene]) -> List[float]:
        """EA-facing adapter: population fitness as plain floats."""
        return [float(f) for f in self.evaluate_population(genes).fitness]
