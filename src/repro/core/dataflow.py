"""Stage 2 — dataflow compilation driver (§IV-B).

A thin façade over :mod:`repro.ir.builder`: given the model, the stage-1
weight-duplication strategy and the loop variables, produce the
:class:`DataflowSpec` (geometries + windowing) and, when requested, the
full IR-based DAG. The spec alone is enough for the analytical evaluator;
the DAG feeds the behavior-level simulator and the DAG-based experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.params import HardwareParams
from repro.hardware.tech import default_params
from repro.ir.builder import DataflowBuilder, DataflowSpec
from repro.ir.dag import IRDag
from repro.nn.model import CNNModel


def make_spec(
    model: CNNModel,
    wt_dup: Sequence[int],
    xb_size: int,
    res_rram: int,
    res_dac: int,
    params: Optional[HardwareParams] = None,
    max_blocks_per_layer: int = 8,
) -> DataflowSpec:
    """Construct the stage-2 spec (validates WtDup against the model)."""
    return DataflowSpec(
        model=model,
        wt_dup=list(wt_dup),
        xb_size=xb_size,
        res_rram=res_rram,
        res_dac=res_dac,
        params=params if params is not None else default_params(),
        max_blocks_per_layer=max_blocks_per_layer,
    )


def compile_dataflow(
    spec: DataflowSpec,
    macro_alloc: Optional[Dict[int, List[int]]] = None,
) -> IRDag:
    """Compile the IR-based DAG for a spec (Alg. 1 line 9).

    Without ``macro_alloc`` the DAG holds computation and intra-macro
    IRs; with it, the stage-3 communication IRs (``merge``/``transfer``)
    are supplemented (§IV-C: "this stage further supplements
    communication-related IRs to the dataflow DAG").
    """
    return DataflowBuilder(spec).build(macro_alloc=macro_alloc)
