"""PIMSYN's primary contribution: the four-stage synthesis flow + DSE.

Stage 1 — :mod:`repro.core.weight_duplication` (SA filter, Eq. 2/4)
Stage 2 — :mod:`repro.core.dataflow` (IR-based DAG compilation)
Stage 3 — :mod:`repro.core.macro_partition` (EA explorer, Alg. 2)
Stage 4 — :mod:`repro.core.component_alloc` (closed form, Eq. 5/6)

:mod:`repro.core.synthesizer` drives the Alg. 1 multi-loop DSE across
:mod:`repro.core.design_space` (Table I), flattening it into a work
queue that :mod:`repro.core.executor` evaluates serially or across a
process pool (with memoization and dominated-task pruning), scoring
candidates with the analytical model in :mod:`repro.core.evaluator` and
packaging winners as :class:`repro.core.solution.SynthesisSolution`.
"""

from repro.core.backend import (
    ArrayBackend,
    TaskGrid,
    available_backends,
    backend_status,
    get_backend,
    register_backend,
)
from repro.core.batch_eval import (
    BatchEvaluation,
    BatchPerformanceEvaluator,
)
from repro.core.config import SynthesisConfig
from repro.core.design_space import DesignPoint, DesignSpace
from repro.core.evaluator import (
    EvaluationResult,
    PerformanceEvaluator,
    throughput_upper_bound,
)
from repro.core.executor import (
    EvaluationCache,
    EvaluationTask,
    ExplorationEngine,
    TaskOutcome,
)
from repro.core.component_alloc import ComponentAllocation, allocate_components
from repro.core.macro_partition import (
    MacroPartition,
    MacroPartitionExplorer,
    decode_gene,
    encode_gene,
)
from repro.core.pareto import ParetoPoint, ParetoSolutionSet, merge_fronts
from repro.core.weight_duplication import WeightDuplicationFilter
from repro.core.dataflow import compile_dataflow
from repro.core.persistence import (
    load_solution,
    save_solution,
    solution_from_payload,
)
from repro.core.grid_eval import GridBoundEvaluator, grid_eval_supported
from repro.core.solution import SynthesisSolution
from repro.core.synthesizer import Pimsyn

__all__ = [
    "ArrayBackend",
    "TaskGrid",
    "available_backends",
    "backend_status",
    "get_backend",
    "register_backend",
    "GridBoundEvaluator",
    "grid_eval_supported",
    "BatchEvaluation",
    "BatchPerformanceEvaluator",
    "SynthesisConfig",
    "DesignPoint",
    "DesignSpace",
    "EvaluationCache",
    "EvaluationResult",
    "EvaluationTask",
    "ExplorationEngine",
    "PerformanceEvaluator",
    "TaskOutcome",
    "throughput_upper_bound",
    "ComponentAllocation",
    "allocate_components",
    "MacroPartition",
    "MacroPartitionExplorer",
    "decode_gene",
    "encode_gene",
    "ParetoPoint",
    "ParetoSolutionSet",
    "merge_fronts",
    "WeightDuplicationFilter",
    "compile_dataflow",
    "load_solution",
    "save_solution",
    "solution_from_payload",
    "SynthesisSolution",
    "Pimsyn",
]
