"""Analytical performance model used inside the DSE loops.

§IV-B: "the performance of synthesized accelerators can be estimated by
the depth of the IR-based DAG and the IRs' latencies". At DSE scale we
exploit the DAG's regularity instead of walking it: within a layer, the
per-block IRs pipeline, so a layer's per-image time is the maximum of its
per-stage times (MVM / ADC / ALU / load / store / merge+transfer); across
layers, the inter-layer pipeline makes the steady-state image period the
maximum over layers. The windowed discrete-event simulator in
:mod:`repro.sim` validates this estimate on final solutions.

Metrics follow §V:

- throughput (images/s and TOPS),
- power efficiency (TOPS/W) at the *actual* drawn power,
- single-image latency (pipeline fill + slowest layer),
- energy per image and EDP (Table V's metrics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.component_alloc import ComponentAllocation
from repro.hardware.noc import MeshNoC
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.ir.builder import DataflowSpec, DataflowBuilder, LayerGeometry
from repro.nn.workload import model_macs


@dataclass
class LayerTiming:
    """Per-image stage times of one layer (seconds)."""

    mvm: float
    adc: float
    alu: float
    load: float
    store: float
    comm: float

    @property
    def total(self) -> float:
        """The layer's per-image time: its slowest pipelined stage."""
        return max(self.mvm, self.adc, self.alu, self.load, self.store,
                   self.comm)

    @property
    def bottleneck(self) -> str:
        stages = {
            "mvm": self.mvm, "adc": self.adc, "alu": self.alu,
            "load": self.load, "store": self.store, "comm": self.comm,
        }
        return max(stages, key=lambda k: stages[k])


@dataclass
class EvaluationResult:
    """Scalar metrics plus per-layer diagnostics for one design."""

    period: float  # steady-state seconds per image
    latency: float  # single-image latency (fill + steady)
    throughput: float  # images per second
    tops: float  # tera-ops (2*MACs) per second
    power: float  # watts actually drawn
    tops_per_watt: float
    energy_per_image: float  # joules
    edp: float  # energy * latency (ms * mJ scale handled by caller)
    layer_timings: List[LayerTiming] = field(default_factory=list)
    bottleneck_layer: int = -1

    @property
    def fitness(self) -> float:
        """EA fitness (§IV-C2): accelerator performance = images/s."""
        return self.throughput


def throughput_upper_bound(
    spec: DataflowSpec,
    budget: PowerBudget,
    enable_macro_sharing: bool = True,
) -> float:
    """Sound best-case throughput (img/s) of a stage-2 spec (pruning bound).

    Used by the DSE executor to discard dominated (WtDup, ResDAC) tasks
    before their EA launches: no macro partition / component allocation
    can push a design past this bound, so a task whose bound cannot beat
    the incumbent cannot change Alg. 1's outcome. Two floors are
    combined through the :class:`LayerTiming` pipeline model:

    - **structural floor** — per-layer best-case stage times that no
      allocation can improve: the exact crossbar-bound MVM time, and
      eDRAM load/store through the largest macro group rule c permits
      (ADC/ALU/comm taken as zero);
    - **power floor** — Eq. 6 says holding every (layer, component)
      delay at ``D`` costs ``sum(P * Wl / Freq) / D`` watts, which must
      fit in the peripheral budget minus a lower bound on the fixed
      structural overhead (``ceil(L/2)`` macros when rule-b sharing may
      halve the macro count, ``L`` otherwise; DAC/S&H scale with the
      spec's exact crossbar count). Pair sharing can at best serve two
      ADC banks for the price of one, so the ADC term is halved when
      sharing is enabled.

    Returns 0.0 when even the overhead floor exceeds the peripheral
    budget (every partition of this spec is infeasible).

    The floors are computed through the *real* model's own functions
    (``PerformanceEvaluator`` stage times, ``fixed_overhead_power``,
    ``layer_workloads``) evaluated at best-case arguments, so a change
    to the power/timing model propagates into the bound instead of
    silently unsoundening the pruning.
    """
    from repro.core.component_alloc import (
        fixed_overhead_power,
        layer_workloads,
    )
    from repro.hardware.crossbar import required_adc_resolution

    params = spec.params
    geometries = spec.geometries
    evaluator = PerformanceEvaluator(spec, budget)
    # Rule c caps the macros a layer can spread over; the largest cap
    # bounds every group's eDRAM port count, hence load/store times.
    max_group = max(
        min(geo.wt_dup * geo.row_tiles, geo.crossbars)
        for geo in geometries
    )
    structural = []
    for geo in geometries:
        load, store = evaluator._memory_times(geo, max_group)
        structural.append(LayerTiming(
            mvm=evaluator._mvm_time(geo),
            adc=0.0, alu=0.0, load=load, store=store, comm=0.0,
        ))
    period_floor = max(timing.total for timing in structural)

    # Fewest macros any partition can use: rule b shares pairs only,
    # so ceil(L/2) with sharing, one per layer without.
    n_layers = len(geometries)
    min_groups = (
        [[index // 2] for index in range(n_layers)]
        if enable_macro_sharing
        else [[index] for index in range(n_layers)]
    )
    fixed_floor = fixed_overhead_power(
        geometries, min_groups, params, budget.xb_size, spec.res_dac
    )
    available = budget.peripheral_power - fixed_floor
    if available <= 0:
        return 0.0

    adc_wl, alu_wl = layer_workloads(spec.geometries, spec.model, spec.bits)
    adc_lo, adc_hi = params.adc_resolution_range
    adc_denom = sum(
        params.adc_power_of(
            required_adc_resolution(
                min(budget.xb_size, geo.rows), budget.res_rram,
                spec.res_dac,
                min_resolution=adc_lo, max_resolution=adc_hi,
            )
        ) * wl / params.adc_sample_rate
        for geo, wl in zip(geometries, adc_wl)
    )
    alu_denom = sum(
        params.alu_power * wl / params.alu_frequency for wl in alu_wl
    )
    if enable_macro_sharing:
        adc_denom /= 2.0
    period_floor = max(period_floor, (adc_denom + alu_denom) / available)
    if period_floor <= 0:
        return math.inf
    return 1.0 / period_floor


class PerformanceEvaluator:
    """Evaluates (MacAlloc, CompAlloc) points for one dataflow spec."""

    def __init__(
        self,
        spec: DataflowSpec,
        budget: PowerBudget,
    ) -> None:
        self.spec = spec
        self.budget = budget
        self.params: HardwareParams = spec.params
        self._macs = model_macs(spec.model)
        self._builder = DataflowBuilder(spec)

    # ------------------------------------------------------------------
    # Stage times
    # ------------------------------------------------------------------
    def _bytes_per_activation(self) -> float:
        return self.spec.model.act_precision / 8.0

    def _mvm_time(self, geo: LayerGeometry) -> float:
        """Crossbar-bound time: every block runs ``bits`` analog reads."""
        return (
            geo.total_blocks * self.spec.bits * self.params.crossbar_latency
        )

    def _memory_times(
        self, geo: LayerGeometry, n_macros: int
    ) -> Tuple[float, float]:
        """(load, store) per-image times through the macro scratchpads."""
        act_bytes = self._bytes_per_activation()
        bandwidth = self.params.edram_bandwidth * max(1, n_macros)
        load = geo.total_blocks * geo.inputs_per_block * act_bytes / bandwidth
        store = (
            geo.total_blocks * geo.outputs_per_block * act_bytes / bandwidth
        )
        return load, store

    def _comm_time(
        self,
        geo: LayerGeometry,
        macro_groups: Sequence[Sequence[int]],
        noc: MeshNoC,
        consumers: Dict[int, List[int]],
    ) -> float:
        """Merge + transfer per-image time attributed to this layer."""
        act_bytes = self._bytes_per_activation()
        group = list(macro_groups[geo.index])
        time = 0.0

        # Partial-sum merge when the layer's row tiles span macros.
        # A block's outputs need ``row_tiles`` partials summed; the
        # reduction tree has ceil(log2(row_tiles)) rounds, and in each
        # round every participating macro ships its slice of the operand
        # through its own NoC port concurrently (neighbors are adjacent
        # mesh nodes since groups are contiguous id ranges).
        if len(group) > 1 and geo.row_tiles > 1:
            rounds = math.ceil(math.log2(geo.row_tiles))
            per_round_bytes = (
                geo.outputs_per_block * act_bytes / len(group)
            )
            neighbor_hops = noc.hops(group[0], group[1])
            per_block = rounds * (
                per_round_bytes / self.params.noc_port_bandwidth
                + max(1, neighbor_hops) * self.params.noc_hop_latency
            )
            time += geo.total_blocks * per_block

        # Activation transfers to each consumer's macros: all source
        # ports stream in parallel, bounded by the receiver's ports.
        # Representative range-end hops stand in for the min over pairs.
        out_bytes = geo.out_positions * geo.cols * act_bytes
        for consumer_idx in consumers.get(geo.index, []):
            dst_group = macro_groups[consumer_idx]
            if set(group) == set(dst_group):
                continue  # same macros: intra-macro store/load covers it
            hops = min(
                noc.hops(group[0], dst_group[0]),
                noc.hops(group[-1], dst_group[0]),
                noc.hops(group[0], dst_group[-1]),
                noc.hops(group[-1], dst_group[-1]),
            )
            ports = min(len(group), len(dst_group))
            serialization = out_bytes / (
                self.params.noc_port_bandwidth * ports
            )
            head = geo.total_blocks * hops * self.params.noc_hop_latency
            time += serialization + head
        return time

    # ------------------------------------------------------------------
    # Full evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        macro_groups: Sequence[Sequence[int]],
        allocation: ComponentAllocation,
    ) -> EvaluationResult:
        """Score one complete design (partition + allocation)."""
        spec = self.spec
        total_macros = len({m for g in macro_groups for m in g})
        noc = MeshNoC(num_macros=max(1, total_macros), params=self.params)

        consumers: Dict[int, List[int]] = {}
        for producer, consumer in spec.model.interlayer_edges():
            consumers.setdefault(producer, []).append(consumer)

        timings: List[LayerTiming] = []
        for geo, layer_alloc in zip(spec.geometries, allocation.layers):
            n_macros = max(1, len(macro_groups[geo.index]))
            load, store = self._memory_times(geo, n_macros)
            timings.append(
                LayerTiming(
                    mvm=self._mvm_time(geo),
                    adc=layer_alloc.adc_delay,
                    alu=layer_alloc.alu_delay,
                    load=load,
                    store=store,
                    comm=self._comm_time(
                        geo, macro_groups, noc, consumers
                    ),
                )
            )

        period = max(t.total for t in timings)
        bottleneck = max(
            range(len(timings)), key=lambda i: timings[i].total
        )
        latency = self._single_image_latency(timings)

        power = self._actual_power(allocation)
        tops = 2.0 * self._macs / period / 1e12
        energy = power * latency
        return EvaluationResult(
            period=period,
            latency=latency,
            throughput=1.0 / period,
            tops=tops,
            power=power,
            tops_per_watt=tops / power if power > 0 else 0.0,
            energy_per_image=energy,
            edp=energy * latency,
            layer_timings=timings,
            bottleneck_layer=bottleneck,
        )

    def _single_image_latency(self, timings: List[LayerTiming]) -> float:
        """Fine-grained pipeline latency of one image (§IV-B).

        Layer ``c`` starts once each producer has produced the first
        consumer block's inputs — the fraction pinned by
        :meth:`DataflowBuilder.producer_block_for` at ``cnt=0``. The
        image completes when the last layer drains.
        """
        spec = self.spec
        starts = [0.0] * len(timings)
        ends = [0.0] * len(timings)
        producer_of: Dict[int, List[int]] = {}
        for producer, consumer in spec.model.interlayer_edges():
            producer_of.setdefault(consumer, []).append(producer)

        for idx, timing in enumerate(timings):
            start = 0.0
            for producer in producer_of.get(idx, []):
                geo_p = spec.geometries[producer]
                first_needed = self._builder.producer_block_for(
                    geo_p, spec.geometries[idx], 0
                )
                fraction = (first_needed + 1) / geo_p.total_blocks
                start = max(
                    start, starts[producer] + timings[producer].total
                    * fraction
                )
            starts[idx] = start
            ends[idx] = start + timing.total
        return max(ends) if ends else 0.0

    def _actual_power(self, allocation: ComponentAllocation) -> float:
        """Power the realized chip draws (<= the constraint)."""
        used_crossbars = sum(g.crossbars for g in self.spec.geometries)
        rram = used_crossbars * self.params.crossbar_power_of(
            self.budget.xb_size
        )
        return rram + allocation.total_peripheral_power

    # ------------------------------------------------------------------
    # Peak metrics (Table IV)
    # ------------------------------------------------------------------
    def peak_metrics(
        self, allocation: ComponentAllocation
    ) -> Tuple[float, float]:
        """(peak TOPS, peak TOPS/W) with every resource saturated.

        Peak throughput multiplies every crossbar's dense MVM rate —
        ``2 * XbSize^2`` MACs per full-precision MVM, which takes
        ``bit_slices * bits`` analog reads — capped by what the chip's
        total ADC capability can drain.
        """
        params = self.params
        xb = self.budget.xb_size
        slices = -(-self.spec.model.weight_precision // self.budget.res_rram)
        bits = self.spec.bits
        used_crossbars = sum(g.crossbars for g in self.spec.geometries)

        reads_per_mvm = slices * bits
        crossbar_ops_rate = (
            used_crossbars * 2.0 * xb * xb
            / (reads_per_mvm * params.crossbar_latency)
        )
        # Each analog read of a crossbar needs XbSize conversions; ops
        # carried per conversion = 2*XbSize / (slices*bits).
        total_adcs = sum(l.adc for l in allocation.layers)
        ops_per_conversion = 2.0 * xb / reads_per_mvm
        adc_ops_rate = total_adcs * params.adc_sample_rate * ops_per_conversion

        peak_rate = min(crossbar_ops_rate, adc_ops_rate)
        power = self._actual_power(allocation)
        peak_tops = peak_rate / 1e12
        return peak_tops, (peak_tops / power if power > 0 else 0.0)
