"""Alg. 1 — the design-space-exploration driver and PIMSYN façade.

The multi-loop flow::

    for RatioRram in [0.1, 0.4]:                 # outer PIM space
      for ResRram in {1, 2, 4}:
        for XbSize in {128, 256, 512}:
          WtDupCandi <- top-30 of the SA filter  # stage 1
          for WtDup in WtDupCandi:
            for ResDAC in {1, 2, 4}:
              dataflow spec / IR DAG             # stage 2
              MacAlloc, CompAlloc <- EA          # stages 3+4
              evaluate, keep the best

``Pimsyn.synthesize()`` runs the whole thing and returns the best
:class:`SynthesisSolution`. ``synthesize_with_wtdup`` pins stage 1 to a
caller-supplied duplication strategy — the hook the Fig. 7 ablation
(SA vs WOHO-heuristic vs no duplication) uses.

Since the executor refactor, the nested loops are flattened into a work
queue of ``(point, WtDup, ResDAC)`` tasks and driven by
:class:`repro.core.executor.ExplorationEngine`, which adds parallel
evaluation (``SynthesisConfig.jobs``), content-keyed memoization of EA
fitness evaluations, and sound dominated-task pruning — all while
returning the same best solution as the serial walk for a fixed seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.archive import DesignArchive
    from repro.core.pareto import ParetoSolutionSet

from repro.core.config import SynthesisConfig
from repro.core.design_space import DesignPoint
from repro.core.executor import ExplorationEngine
from repro.core.solution import SynthesisSolution
from repro.errors import InfeasibleError
from repro.nn.model import CNNModel

ProgressCallback = Callable[[str], None]


@dataclass
class SynthesisReport:
    """Telemetry of one DSE run.

    ``ea_runs`` counts EA launches actually executed; ``pruned_tasks``
    counts launches skipped because their analytical throughput bound
    could not beat the incumbent. ``cache_hits`` is the evaluation-memo
    total aggregated over all EA runs (and worker processes);
    ``ea_evaluations`` is the number of full component-allocation
    evaluations actually performed — equivalently, the memo misses.
    """

    outer_points: int = 0
    candidates_tried: int = 0
    ea_runs: int = 0
    nsga_runs: int = 0
    pruned_tasks: int = 0
    infeasible_points: int = 0
    ea_evaluations: int = 0
    cache_hits: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    interrupted: bool = False
    best_history: List[float] = field(default_factory=list)

    @property
    def cache_misses(self) -> int:
        """Memo misses — every miss runs one full evaluation."""
        return self.ea_evaluations


class Pimsyn:
    """The synthesis framework: CNN + power constraint -> accelerator."""

    def __init__(
        self,
        model: CNNModel,
        config: Optional[SynthesisConfig] = None,
        progress: Optional[ProgressCallback] = None,
        archive: Optional["DesignArchive"] = None,
        warm_memo=None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else SynthesisConfig()
        self.progress = progress
        self.archive = archive
        self.warm_memo = warm_memo
        self.report = SynthesisReport()
        self._engine_ref: Optional[ExplorationEngine] = None

    # ------------------------------------------------------------------
    # Alg. 1
    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisSolution:
        """Run the full DSE; return the best design found.

        Raises :class:`InfeasibleError` when no design point in the
        configured space can hold the model under the power constraint.
        """
        started = time.perf_counter()
        best = self._engine().run()
        self.report.wall_seconds = time.perf_counter() - started
        if best is None:
            raise InfeasibleError(
                f"no feasible design for {self.model.name} at "
                f"{self.config.total_power} W in the configured space"
            )
        return best

    def synthesize_pareto(self) -> "ParetoSolutionSet":
        """Multi-objective DSE: the global Pareto front over
        ``config.objectives`` instead of a single best design.

        Runs the same flat task queue as :meth:`synthesize` (un-pruned),
        then one NSGA-II launch per task through the same memoized
        batch-fitness path, merging the local fronts under the shared
        strict dominance. The returned set's ``solution`` is the
        front's best point in the first objective materialized as a
        full :class:`SynthesisSolution`; with the default objectives
        its metrics match :meth:`synthesize`'s winner exactly.

        Raises :class:`InfeasibleError` when no design point in the
        configured space can hold the model under the power constraint.
        """
        started = time.perf_counter()
        front = self._engine().run_pareto(self.config.objectives)
        self.report.wall_seconds = time.perf_counter() - started
        if front is None:
            raise InfeasibleError(
                f"no feasible design for {self.model.name} at "
                f"{self.config.total_power} W in the configured space"
            )
        return front

    def synthesize_with_wtdup(
        self,
        wtdup_of_point: Callable[[DesignPoint], Sequence[int]],
    ) -> SynthesisSolution:
        """Alg. 1 with stage 1 replaced by a fixed duplication policy.

        ``wtdup_of_point`` maps each outer design point to a WtDup
        vector (it needs the point because feasible duplication depends
        on the crossbar budget). Used by the Fig. 7 comparison.
        """
        started = time.perf_counter()
        best = self._engine().run(
            candidates_of_point=lambda point: [
                tuple(int(d) for d in wtdup_of_point(point))
            ]
        )
        self.report.wall_seconds = time.perf_counter() - started
        if best is None:
            raise InfeasibleError(
                f"no feasible design for {self.model.name} with the "
                "supplied weight-duplication policy"
            )
        return best

    def memo_snapshot(self):
        """Evaluation-memo entries gathered by the last synthesis run.

        The serve-layer result store persists these so identical future
        jobs warm-start (``warm_memo=``) instead of re-evaluating; an
        identical warm-started run performs zero fresh EA evaluations.
        """
        if self._engine_ref is None:
            return []
        return self._engine_ref.memo_snapshot()

    def _engine(self) -> ExplorationEngine:
        self._engine_ref = ExplorationEngine(
            model=self.model,
            config=self.config,
            report=self.report,
            progress=self.progress,
            archive=self.archive,
            warm_memo=self.warm_memo,
        )
        return self._engine_ref
