"""Alg. 1 — the design-space-exploration driver and PIMSYN façade.

The multi-loop flow::

    for RatioRram in [0.1, 0.4]:                 # outer PIM space
      for ResRram in {1, 2, 4}:
        for XbSize in {128, 256, 512}:
          WtDupCandi <- top-30 of the SA filter  # stage 1
          for WtDup in WtDupCandi:
            for ResDAC in {1, 2, 4}:
              dataflow spec / IR DAG             # stage 2
              MacAlloc, CompAlloc <- EA          # stages 3+4
              evaluate, keep the best

``Pimsyn.synthesize()`` runs the whole thing and returns the best
:class:`SynthesisSolution`. ``synthesize_with_wtdup`` pins stage 1 to a
caller-supplied duplication strategy — the hook the Fig. 7 ablation
(SA vs WOHO-heuristic vs no duplication) uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.archive import DesignArchive

from repro.core.config import SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.design_space import DesignPoint, DesignSpace
from repro.core.macro_partition import MacroPartitionExplorer
from repro.core.solution import SynthesisSolution
from repro.core.weight_duplication import WeightDuplicationFilter
from repro.errors import InfeasibleError
from repro.hardware.power import PowerBudget
from repro.nn.model import CNNModel
from repro.utils.rng import SeedSequence

ProgressCallback = Callable[[str], None]


@dataclass
class SynthesisReport:
    """Telemetry of one DSE run."""

    outer_points: int = 0
    candidates_tried: int = 0
    ea_runs: int = 0
    infeasible_points: int = 0
    wall_seconds: float = 0.0
    best_history: List[float] = field(default_factory=list)


class Pimsyn:
    """The synthesis framework: CNN + power constraint -> accelerator."""

    def __init__(
        self,
        model: CNNModel,
        config: Optional[SynthesisConfig] = None,
        progress: Optional[ProgressCallback] = None,
        archive: Optional["DesignArchive"] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else SynthesisConfig()
        self.progress = progress
        self.archive = archive
        self.report = SynthesisReport()
        self._seeds = SeedSequence(self.config.seed)

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ------------------------------------------------------------------
    # Alg. 1
    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisSolution:
        """Run the full DSE; return the best design found.

        Raises :class:`InfeasibleError` when no design point in the
        configured space can hold the model under the power constraint.
        """
        started = time.perf_counter()
        best: Optional[SynthesisSolution] = None
        space = DesignSpace(self.model, self.config)

        for point in space.outer_points():
            self.report.outer_points += 1
            self._log(f"exploring {point.describe()}")
            candidates = self._wtdup_candidates(point)
            solution = self._explore_candidates(point, candidates, best)
            if solution is not None:
                best = solution

        self.report.wall_seconds = time.perf_counter() - started
        if best is None:
            raise InfeasibleError(
                f"no feasible design for {self.model.name} at "
                f"{self.config.total_power} W in the configured space"
            )
        return best

    def synthesize_with_wtdup(
        self,
        wtdup_of_point: Callable[[DesignPoint], Sequence[int]],
    ) -> SynthesisSolution:
        """Alg. 1 with stage 1 replaced by a fixed duplication policy.

        ``wtdup_of_point`` maps each outer design point to a WtDup
        vector (it needs the point because feasible duplication depends
        on the crossbar budget). Used by the Fig. 7 comparison.
        """
        started = time.perf_counter()
        best: Optional[SynthesisSolution] = None
        space = DesignSpace(self.model, self.config)
        for point in space.outer_points():
            self.report.outer_points += 1
            wt_dup = tuple(int(d) for d in wtdup_of_point(point))
            solution = self._explore_candidates(point, [wt_dup], best)
            if solution is not None:
                best = solution
        self.report.wall_seconds = time.perf_counter() - started
        if best is None:
            raise InfeasibleError(
                f"no feasible design for {self.model.name} with the "
                "supplied weight-duplication policy"
            )
        return best

    # ------------------------------------------------------------------
    # Inner loops (Alg. 1 lines 6-12)
    # ------------------------------------------------------------------
    def _wtdup_candidates(
        self, point: DesignPoint
    ) -> List[Tuple[int, ...]]:
        """Stage 1 (line 6): SA filter for this outer point."""
        try:
            filter_ = WeightDuplicationFilter(
                model=self.model,
                xb_size=point.xb_size,
                res_rram=point.res_rram,
                num_crossbars=point.num_crossbars,
                config=self.config,
            )
        except InfeasibleError:
            self.report.infeasible_points += 1
            return []
        rng = self._seeds.spawn(f"sa:{point.describe()}")
        return [tuple(c) for c in filter_.top_candidates(rng)]

    def _explore_candidates(
        self,
        point: DesignPoint,
        candidates: Sequence[Tuple[int, ...]],
        incumbent: Optional[SynthesisSolution],
    ) -> Optional[SynthesisSolution]:
        """Lines 7-12: traverse candidates x ResDAC, run EA, keep best."""
        best = incumbent
        budget = PowerBudget(
            total_power=self.config.total_power,
            ratio_rram=point.ratio_rram,
            xb_size=point.xb_size,
            res_rram=point.res_rram,
            num_crossbars=point.num_crossbars,
        )
        for wt_dup in candidates:
            self.report.candidates_tried += 1
            for res_dac in self.config.res_dac_choices:
                spec = make_spec(
                    self.model, wt_dup,
                    xb_size=point.xb_size,
                    res_rram=point.res_rram,
                    res_dac=res_dac,
                    params=self.config.params,
                    max_blocks_per_layer=self.config.max_blocks_per_layer,
                )
                rng = self._seeds.spawn(
                    f"ea:{point.describe()}:{wt_dup}:{res_dac}"
                )
                explorer = MacroPartitionExplorer(
                    spec=spec, budget=budget, res_dac=res_dac,
                    config=self.config, rng=rng,
                )
                self.report.ea_runs += 1
                try:
                    partition, allocation, result = explorer.explore()
                except InfeasibleError:
                    continue
                self.report.best_history.append(result.fitness)
                if self.archive is not None:
                    from repro.core.archive import ArchiveEntry

                    self.archive.record(ArchiveEntry(
                        ratio_rram=point.ratio_rram,
                        res_rram=point.res_rram,
                        xb_size=point.xb_size,
                        res_dac=res_dac,
                        wt_dup=tuple(wt_dup),
                        throughput=result.throughput,
                        power=result.power,
                        tops_per_watt=result.tops_per_watt,
                        latency=result.latency,
                        num_macros=partition.num_macros,
                    ))
                if best is None or (
                    result.fitness > best.evaluation.fitness
                ):
                    best = SynthesisSolution(
                        model_name=self.model.name,
                        total_power=self.config.total_power,
                        ratio_rram=point.ratio_rram,
                        res_rram=point.res_rram,
                        xb_size=point.xb_size,
                        res_dac=res_dac,
                        wt_dup=tuple(wt_dup),
                        partition=partition,
                        allocation=allocation,
                        evaluation=result,
                        spec=spec,
                        budget=budget,
                    )
                    self._log(
                        f"  new best: {result.throughput:.1f} img/s "
                        f"({result.tops_per_watt:.3f} TOPS/W) at "
                        f"ResDAC={res_dac} WtDup={list(wt_dup)[:4]}..."
                    )
        return best
