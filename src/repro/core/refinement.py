"""Post-DSE local refinement of a synthesized solution.

Alg. 1 traverses WtDup candidates that the SA *surrogate* (Eq. 4)
ranked highly; the true objective is only evaluated downstream. A
cheap, high-yield extension is therefore a hill-climb around the DSE
winner under the *real* objective: perturb the duplication vector one
step at a time (grow / shrink / shift, the same moves as the SA
neighborhood), re-run stages 2-4, and keep strict improvements. The
paper's future-work direction of tightening the surrogate/objective gap
is realized here as machinery instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.macro_partition import MacroPartitionExplorer
from repro.core.solution import SynthesisSolution
from repro.core.weight_duplication import WeightDuplicationFilter
from repro.errors import InfeasibleError
from repro.nn.model import CNNModel


@dataclass
class RefinementReport:
    """Telemetry of one refinement run."""

    moves_tried: int = 0
    moves_accepted: int = 0
    initial_throughput: float = 0.0
    final_throughput: float = 0.0

    @property
    def improvement(self) -> float:
        if self.initial_throughput <= 0:
            return 0.0
        return self.final_throughput / self.initial_throughput


def refine_solution(
    solution: SynthesisSolution,
    model: CNNModel,
    config: SynthesisConfig,
    max_moves: int = 20,
    seed: int = 0,
) -> Tuple[SynthesisSolution, RefinementReport]:
    """Hill-climb the WtDup vector around a DSE winner.

    Each move perturbs one layer's duplication (respecting Eq. 2's
    crossbar budget), re-runs the EA + allocation at the solution's
    design point, and accepts strict throughput improvements. Returns
    the refined solution (possibly the original) and a report.
    """
    rng = random.Random(seed)
    report = RefinementReport(
        initial_throughput=solution.evaluation.throughput,
        final_throughput=solution.evaluation.throughput,
    )

    filt = WeightDuplicationFilter(
        model=model,
        xb_size=solution.xb_size,
        res_rram=solution.res_rram,
        num_crossbars=solution.budget.num_crossbars,
        config=config,
    )

    best = solution
    current = tuple(solution.wt_dup)
    for _ in range(max_moves):
        candidate = filt.neighbor(current, rng)
        if candidate == current:
            continue
        report.moves_tried += 1
        refined = _rebuild(best, model, config, candidate, rng)
        if refined is None:
            continue
        if refined.evaluation.throughput > best.evaluation.throughput:
            best = refined
            current = candidate
            report.moves_accepted += 1
            report.final_throughput = refined.evaluation.throughput
    return best, report


def _rebuild(
    reference: SynthesisSolution,
    model: CNNModel,
    config: SynthesisConfig,
    wt_dup: Tuple[int, ...],
    rng: random.Random,
) -> Optional[SynthesisSolution]:
    """Run stages 2-4 for a new WtDup at the reference design point."""
    spec = make_spec(
        model, wt_dup,
        xb_size=reference.xb_size,
        res_rram=reference.res_rram,
        res_dac=reference.res_dac,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    explorer = MacroPartitionExplorer(
        spec=spec, budget=reference.budget,
        res_dac=reference.res_dac, config=config,
        rng=random.Random(rng.randrange(2 ** 32)),
    )
    try:
        partition, allocation, result = explorer.explore()
    except InfeasibleError:
        return None
    return SynthesisSolution(
        model_name=reference.model_name,
        total_power=reference.total_power,
        ratio_rram=reference.ratio_rram,
        res_rram=reference.res_rram,
        xb_size=reference.xb_size,
        res_dac=reference.res_dac,
        wt_dup=tuple(wt_dup),
        partition=partition,
        allocation=allocation,
        evaluation=result,
        spec=spec,
        budget=reference.budget,
    )
