"""PipeLayer (Song et al., HPCA 2017) re-modeled.

PipeLayer pipelines layer-wise with heavy weight duplication and a
spike-based input scheme: activations enter as unary spike trains rather
than DAC-converted voltages, so a 16-bit activation costs far more
integration steps than bit-serial DAC streaming — we charge that as a
per-step overhead on the conversion path (its integrate-and-fire
output counting serializes readout). Combined with 4-bit cells forcing
high-resolution readout, this lands PipeLayer at the bottom of the
efficiency table, as in the paper (0.14 TOPS/W published, 21x below
PIMSYN).
"""

from __future__ import annotations

from repro.baselines.common import ManualDesign


def pipelayer_design() -> ManualDesign:
    """The fixed PipeLayer recipe under this package's abstraction."""
    return ManualDesign(
        name="pipelayer",
        xb_size=128,
        res_rram=4,
        res_dac=1,
        adcs_per_crossbar=1.0,
        crossbars_per_macro=32,
        alus_per_macro=8,
        adc_resolution=None,  # lossless minimum for 4-bit cells
        wtdup_policy="woho",
        # Spike-coded inputs: unary integration instead of bit-serial
        # DAC streaming costs ~2x on the readout path.
        step_overhead=2.0,
    )
