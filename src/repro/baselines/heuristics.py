"""Weight-duplication heuristics of prior work (Fig. 7's comparands).

- ``woho_proportional_wtdup``: ISAAC/PipeLayer's rule — layer
  duplication factors proportional to the layer's output size
  ``WO * HO``, scaled into the crossbar budget (§V-C1: "layers' weight
  duplication factors are proportional to layers' WOHO").
- ``no_duplication_wtdup``: the Gibbon/NACIM regime — every layer holds
  exactly one weight copy.
"""

from __future__ import annotations

from typing import List

from repro.errors import InfeasibleError
from repro.hardware.crossbar import crossbar_set_size
from repro.nn.model import CNNModel


def no_duplication_wtdup(model: CNNModel) -> List[int]:
    """WtDup = 1 everywhere (existing exploration works, §V-C1)."""
    return [1] * model.num_weighted_layers


def woho_proportional_wtdup(
    model: CNNModel,
    xb_size: int,
    res_rram: int,
    num_crossbars: int,
) -> List[int]:
    """WOHO-proportional duplication, scaled to fill the budget.

    ``WtDup_i = max(1, round(k * WO_i * HO_i))`` with the largest ``k``
    that satisfies Eq. 2's crossbar constraint (found by bisection on
    the continuous scale, then greedily trimmed to feasibility).
    """
    layers = model.weighted_layers
    set_sizes = [
        crossbar_set_size(l, xb_size, res_rram, model.weight_precision)
        for l in layers
    ]
    positions = []
    for layer in layers:
        assert layer.output_shape is not None
        _, ho, wo = layer.output_shape
        positions.append(ho * wo)

    floor_cost = sum(set_sizes)
    if floor_cost > num_crossbars:
        raise InfeasibleError(
            f"{model.name}: WtDup=1 needs {floor_cost} crossbars, "
            f"budget is {num_crossbars}"
        )

    def cost(scale: float) -> int:
        return sum(
            max(1, min(pos, round(scale * pos))) * size
            for pos, size in zip(positions, set_sizes)
        )

    low, high = 0.0, 1.0
    # Expand high until infeasible (or every layer saturates at WtDup=WOHO).
    while cost(high) <= num_crossbars and high < 2.0:
        high *= 2.0
    for _ in range(60):
        mid = (low + high) / 2.0
        if cost(mid) <= num_crossbars:
            low = mid
        else:
            high = mid

    duplication = [
        max(1, min(pos, round(low * pos)))
        for pos in positions
    ]
    # Numerical guard: trim the largest layers until feasible.
    while (
        sum(d * s for d, s in zip(duplication, set_sizes)) > num_crossbars
    ):
        index = max(
            (i for i in range(len(duplication)) if duplication[i] > 1),
            key=lambda i: duplication[i] * set_sizes[i],
            default=None,
        )
        if index is None:
            raise InfeasibleError(
                "cannot trim WOHO-proportional duplication to budget"
            )
        duplication[index] -= 1
    return duplication
