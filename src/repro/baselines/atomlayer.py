"""AtomLayer (Qiao et al., DAC 2018) re-modeled.

AtomLayer computes one layer at a time with "atomic" row-by-row
processing — a universal accelerator that deliberately avoids the
inter-layer pipeline and its duplication cost. In our abstraction that
is: no weight duplication, modest macros, rotating-register data reuse
adding a per-step overhead on the readout path. Published: 0.68 TOPS/W
peak (its peak is decent; its *effective* throughput is limited by the
absent pipeline, which the latency metrics expose).
"""

from __future__ import annotations

from repro.baselines.common import ManualDesign


def atomlayer_design() -> ManualDesign:
    """The fixed AtomLayer recipe under this package's abstraction."""
    return ManualDesign(
        name="atomlayer",
        xb_size=128,
        res_rram=2,
        res_dac=1,
        adcs_per_crossbar=0.75,
        crossbars_per_macro=64,
        alus_per_macro=16,
        adc_resolution=8,
        wtdup_policy="none",  # layer-by-layer, single weight copy
        step_overhead=1.5,  # row rotation / partial-sum eviction
    )
