"""PUMA (Ankit et al., ASPLOS 2019) re-modeled.

PUMA is a programmable ISA-driven architecture: ISAAC-like analog tiles
(128x128, 2-bit cells, 1-bit input streaming) but with output-register
scheduling that lets one ADC serve two crossbars, smaller cores (8
crossbars per core) and wider vector-function units. The better ADC
amortization is why its published peak efficiency (0.84 TOPS/W) tops
ISAAC's 0.63.
"""

from __future__ import annotations

from repro.baselines.common import ManualDesign


def puma_design() -> ManualDesign:
    """The fixed PUMA recipe under this package's abstraction."""
    return ManualDesign(
        name="puma",
        xb_size=128,
        res_rram=2,
        res_dac=1,
        adcs_per_crossbar=0.5,  # ADC shared by two MVM units
        crossbars_per_macro=64,  # one PUMA core cluster
        alus_per_macro=32,  # wide VFU
        adc_resolution=8,
        wtdup_policy="woho",
    )
