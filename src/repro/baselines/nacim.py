"""NACIM (Jiang et al., IEEE TC) surrogate.

Table I's second comparison row: NACIM co-explores device, circuit and
architecture — it *does* explore ``MacAlloc`` (unlike Gibbon) but, like
all prior exploration works, has no weight duplication and no
power-distribution variables (``RatioRram``/``CompAlloc`` are "manually
determined", §III). The surrogate therefore keeps Gibbon's
no-duplication policy but uses finer macros (its architecture search
granularity) and a mid-grid device point.
"""

from __future__ import annotations

from repro.baselines.common import ManualDesign


def nacim_design() -> ManualDesign:
    """A NACIM-style fixed design under this package's abstraction."""
    return ManualDesign(
        name="nacim",
        xb_size=256,
        res_rram=2,
        res_dac=2,
        adcs_per_crossbar=0.75,
        crossbars_per_macro=8,  # fine-grained explored tiles
        alus_per_macro=4,
        adc_resolution=None,
        wtdup_policy="none",
    )
