"""Published reference numbers from the paper's evaluation tables.

These are transcription of the PIMSYN paper's Table IV and Table V,
kept verbatim so benches can report paper-vs-measured for every
experiment (EXPERIMENTS.md is generated against these).
"""

from __future__ import annotations

from typing import Dict

# Table IV: peak power efficiency (TOPS/W), 16-bit quantification.
# PRIME's figure is the paper's projection to 16-bit.
PUBLISHED_PEAK_TOPS_PER_WATT: Dict[str, float] = {
    "pimsyn": 3.07,
    "pipelayer": 0.14,
    "isaac": 0.63,
    "prime": 0.5,
    "puma": 0.84,
    "atomlayer": 0.68,
}

# Table IV improvement factors (PIMSYN / baseline).
PUBLISHED_IMPROVEMENT: Dict[str, float] = {
    "pipelayer": 21.45,
    "isaac": 4.83,
    "prime": 6.11,
    "puma": 3.65,
    "atomlayer": 4.51,
}

# Table V: Gibbon comparison on CIFAR-10 / CIFAR-100.
# metric -> model -> (gibbon, pimsyn); units: EDP ms*mJ, energy mJ,
# latency ms. CIFAR-10 and CIFAR-100 rows are near-identical in the
# paper; we keep the CIFAR-10 column.
PUBLISHED_TABLE5: Dict[str, Dict[str, tuple]] = {
    "edp": {
        "alexnet": (0.38, 0.024),
        "vgg16": (17.22, 7.94),
        "resnet18": (4.75, 3.76),
    },
    "energy": {
        "alexnet": (0.38, 0.119),
        "vgg16": (2.68, 2.98),
        "resnet18": (1.33, 2.34),
    },
    "latency": {
        "alexnet": (0.99, 0.197),
        "vgg16": (6.43, 2.66),
        "resnet18": (3.58, 1.61),
    },
}

# Fig. 6: effective power-efficiency / throughput improvement ranges
# over ISAAC (PIMSYN / ISAAC), as stated in §V-A.
PUBLISHED_FIG6_EFFICIENCY_RANGE = (1.4, 5.8)
PUBLISHED_FIG6_EFFICIENCY_MEAN = 3.9
PUBLISHED_FIG6_THROUGHPUT_RANGE = (2.30, 6.45)
PUBLISHED_FIG6_THROUGHPUT_MEAN = 3.4

# Fig. 7/8/9 improvements quoted in §V-C.
PUBLISHED_SA_VS_HEURISTIC = {"efficiency": 1.19, "throughput": 1.27}
PUBLISHED_SPECIALIZED_VS_IDENTICAL = {
    "efficiency": 1.13, "throughput": 1.31,
}
PUBLISHED_SHARING_VS_NO_SHARING = {
    "efficiency": 1.08, "throughput": 1.15,
}
