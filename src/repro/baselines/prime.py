"""PRIME (Chi et al., ISCA 2016) re-modeled.

PRIME embeds computation in ReRAM main memory: 256x256 arrays of 4-bit
cells driven with multi-bit (modeled 4-bit) input voltages, reusing the
memory sense amplifiers as converters. The aggressive analog precision
forces maximum-resolution readout, and the memory-first organization
means coarse macros, thin ALU support and no duplication tuning beyond
the basic proportional rule. The paper reports 0.5 TOPS/W (projected to
16-bit; PRIME itself is 8-bit).
"""

from __future__ import annotations

from repro.baselines.common import ManualDesign


def prime_design() -> ManualDesign:
    """The fixed PRIME recipe under this package's abstraction."""
    return ManualDesign(
        name="prime",
        xb_size=256,
        res_rram=4,
        res_dac=4,
        adcs_per_crossbar=0.5,  # sense-amp sharing across mats
        crossbars_per_macro=64,  # one memory bank
        alus_per_macro=8,
        adc_resolution=None,  # lossless minimum (clamps to 14-bit)
        wtdup_policy="woho",
    )
