"""ISAAC (Shafiee et al., ISCA 2016) re-modeled.

Published organization: 128x128 crossbars of 2-bit cells, 1-bit DACs,
one 8-bit 1.2 GS/s ADC per crossbar, IMAs of 8 crossbars, 12 IMAs per
tile (our macro = one tile, 96 crossbars), shift-and-add/pooling units
per IMA, eDRAM tile buffer, and WOHO-proportional weight duplication
(§V-C1 attributes that heuristic to ISAAC/PipeLayer). ISAAC dedicates a
large share of power to peripherals — the paper quotes >80% — which the
fixed one-ADC-per-crossbar rule reproduces naturally.
"""

from __future__ import annotations

from repro.baselines.common import ManualDesign


def isaac_design() -> ManualDesign:
    """The fixed ISAAC recipe under this package's abstraction."""
    return ManualDesign(
        name="isaac",
        xb_size=128,
        res_rram=2,
        res_dac=1,
        adcs_per_crossbar=1.0,
        crossbars_per_macro=96,  # 12 IMAs x 8 crossbars
        alus_per_macro=24,  # 2 S+A/pool units per IMA
        adc_resolution=8,  # ISAAC's fixed 8-bit SAR ADC
        wtdup_policy="woho",
    )
