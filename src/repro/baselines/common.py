"""Shared machinery for re-modeling manually-designed accelerators.

A :class:`ManualDesign` freezes the choices a human architect made —
crossbar size, device/DAC resolutions, ADC provisioning per crossbar,
macro granularity, weight-duplication policy — and
:func:`build_manual_solution` evaluates that fixed design with the same
spec/evaluator pipeline PIMSYN's winners go through, returning a regular
:class:`SynthesisSolution`. No SA, no EA, no Eq. 6 balancing: components
are provisioned by the design's own fixed rules, which is precisely why
manual designs lose to synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.component_alloc import (
    ComponentAllocation,
    LayerAllocation,
    fixed_overhead_power,
    layer_workloads,
)
from repro.core.dataflow import make_spec
from repro.core.evaluator import PerformanceEvaluator
from repro.core.macro_partition import MacroPartition, encode_gene
from repro.core.solution import SynthesisSolution
from repro.errors import InfeasibleError
from repro.hardware.crossbar import required_adc_resolution
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.hardware.tech import DEFAULT_TECHNOLOGY
from repro.nn.model import CNNModel
from repro.utils.mathutils import ceil_div

# Genes encode #macros below 1000 (the paper's base-1000 packing).
_MAX_MACROS_PER_LAYER = 999


@dataclass(frozen=True)
class ManualDesign:
    """A fixed, human-authored PIM accelerator recipe.

    Manual designs scale by *replicating a fixed crossbar bundle*: each
    crossbar arrives with its DACs, sample-holds, its share of the ADC
    bank, and its amortized slice of the macro (eDRAM/NoC/registers/
    ALUs). The chip a manual design affords at a power constraint is
    therefore ``total_power / bundle_power`` crossbars — no Eq. 6
    rebalancing, which is exactly the rigidity PIMSYN exploits.
    """

    name: str
    xb_size: int
    res_rram: int
    res_dac: int
    adcs_per_crossbar: float  # ADC provisioning rule
    crossbars_per_macro: int  # macro granularity
    alus_per_macro: int
    ratio_rram: float = 0.0  # derived when 0 (crossbar share of bundle)
    adc_resolution: Optional[int] = None  # None -> lossless minimum
    wtdup_policy: str = "woho"  # "woho" | "none"
    # Per-step slowdown from scheme-specific overheads (e.g. AtomLayer's
    # row-by-row rotation, PipeLayer's spike integration).
    step_overhead: float = 1.0

    def effective_adc_resolution(self, params: HardwareParams) -> int:
        """The design's fixed ADC resolution (or the lossless minimum)."""
        if self.adc_resolution is not None:
            return self.adc_resolution
        lo, hi = params.adc_resolution_range
        return required_adc_resolution(
            self.xb_size, self.res_rram, self.res_dac,
            min_resolution=lo, max_resolution=hi,
        )

    def bundle_power(self, params: HardwareParams) -> float:
        """Watts one crossbar costs with all its attached peripherals."""
        per_macro = (
            params.edram_power + params.noc_power
            + params.register_power_per_macro
            + self.alus_per_macro * params.alu_power
        )
        return (
            params.crossbar_power_of(self.xb_size)
            + self.xb_size * (
                params.dac_power_of(self.res_dac)
                + params.sample_hold_power
            )
            + self.adcs_per_crossbar
            * params.adc_power_of(self.effective_adc_resolution(params))
            + per_macro / self.crossbars_per_macro
        )

    def derived_ratio_rram(self, params: HardwareParams) -> float:
        """Crossbar share of the bundle (ISAAC's is <0.1: >80% peripheral)."""
        if self.ratio_rram > 0:
            return self.ratio_rram
        return (
            params.crossbar_power_of(self.xb_size)
            / self.bundle_power(params)
        )

    def peak_point(self, params: HardwareParams):
        """The design's architecture-level peak (Table IV metric)."""
        from repro.hardware.peak import fixed_peak_point

        macro_overhead = (
            params.edram_power + params.noc_power
            + params.register_power_per_macro
            + self.alus_per_macro * params.alu_power
        ) / self.crossbars_per_macro
        return fixed_peak_point(
            xb_size=self.xb_size,
            res_rram=self.res_rram,
            res_dac=self.res_dac,
            adcs_per_crossbar=self.adcs_per_crossbar,
            adc_resolution=self.effective_adc_resolution(params),
            macro_overhead_per_crossbar=macro_overhead,
            params=params,
            conversion_overhead=self.step_overhead,
        )

    def minimum_power(
        self, model: CNNModel, params: HardwareParams
    ) -> float:
        """Power needed to hold one weight copy of every layer."""
        from repro.hardware.crossbar import crossbar_set_size

        min_crossbars = sum(
            crossbar_set_size(
                layer, self.xb_size, self.res_rram,
                model.weight_precision,
            )
            for layer in model.weighted_layers
        )
        return min_crossbars * self.bundle_power(params)


def manual_allocation(
    design: ManualDesign,
    spec,
    budget: PowerBudget,
    model: CNNModel,
) -> ComponentAllocation:
    """Provision components by the design's fixed rules (no balancing)."""
    params: HardwareParams = spec.params
    bits = params.act_bit_iterations(design.res_dac)
    adc_wl, alu_wl = layer_workloads(spec.geometries, model, bits)

    macro_groups = manual_macro_groups(design, spec)
    fixed = fixed_overhead_power(
        spec.geometries, macro_groups, params, design.xb_size,
        design.res_dac,
    )

    layers: List[LayerAllocation] = []
    adc_alu_power = 0.0
    for geo, wl_adc, wl_alu in zip(spec.geometries, adc_wl, alu_wl):
        resolution = design.adc_resolution
        if resolution is None:
            lo, hi = params.adc_resolution_range
            resolution = required_adc_resolution(
                min(design.xb_size, geo.rows), design.res_rram,
                design.res_dac,
                min_resolution=lo, max_resolution=hi,
            )
        n_adc = max(1.0, geo.crossbars * design.adcs_per_crossbar)
        n_macros = len(macro_groups[geo.index])
        n_alu = max(1.0, float(n_macros * design.alus_per_macro))
        adc_delay = (
            wl_adc / (params.adc_sample_rate * n_adc)
            * design.step_overhead
        )
        alu_delay = wl_alu / (params.alu_frequency * n_alu)
        layers.append(
            LayerAllocation(
                adc=n_adc,
                alu=n_alu,
                adc_resolution=resolution,
                adc_delay=adc_delay,
                alu_delay=alu_delay,
            )
        )
        adc_alu_power += (
            params.adc_power_of(resolution) * n_adc
            + params.alu_power * n_alu
        )

    return ComponentAllocation(
        layers=layers,
        fixed_power=fixed,
        adc_alu_power=adc_alu_power,
        balanced_delay=max(
            max(l.adc_delay for l in layers),
            max(l.alu_delay for l in layers),
        ),
        sharing_savings=0.0,
    )


def manual_macro_groups(design: ManualDesign, spec) -> List[List[int]]:
    """Tile each layer's crossbars into fixed-size macros."""
    groups: List[List[int]] = []
    next_id = 0
    for geo in spec.geometries:
        count = min(
            _MAX_MACROS_PER_LAYER,
            max(1, ceil_div(geo.crossbars, design.crossbars_per_macro)),
        )
        groups.append(list(range(next_id, next_id + count)))
        next_id += count
    return groups


def manual_wtdup(
    design: ManualDesign, model: CNNModel, num_crossbars: int
) -> List[int]:
    """Apply the design's duplication policy."""
    from repro.baselines.heuristics import (
        no_duplication_wtdup,
        woho_proportional_wtdup,
    )

    if design.wtdup_policy == "none":
        return no_duplication_wtdup(model)
    if design.wtdup_policy == "woho":
        return woho_proportional_wtdup(
            model, design.xb_size, design.res_rram, num_crossbars
        )
    raise InfeasibleError(
        f"{design.name}: unknown wtdup policy {design.wtdup_policy!r}"
    )


def build_manual_solution(
    design: ManualDesign,
    model: CNNModel,
    total_power: float,
    params: Optional[HardwareParams] = None,
    max_blocks_per_layer: int = 8,
    tech: str = DEFAULT_TECHNOLOGY,
) -> SynthesisSolution:
    """Evaluate a manual design on ``model`` at ``total_power``.

    Raises :class:`InfeasibleError` when the bundle-cost crossbar count
    cannot hold one weight copy of every layer (use
    :meth:`ManualDesign.minimum_power` to size the budget). The device
    constants come from ``params`` or the ``tech`` profile — baseline
    designs re-priced under another technology stay comparable to a
    PIMSYN run under the same profile.
    """
    hw = (
        params if params is not None
        else HardwareParams.from_technology(tech)
    )
    ratio = design.derived_ratio_rram(hw)
    budget = PowerBudget.from_constraint(
        total_power, ratio, design.xb_size, design.res_rram, hw,
    )
    wt_dup = manual_wtdup(design, model, budget.num_crossbars)
    spec = make_spec(
        model, wt_dup,
        xb_size=design.xb_size,
        res_rram=design.res_rram,
        res_dac=design.res_dac,
        params=hw,
        max_blocks_per_layer=max_blocks_per_layer,
    )
    macro_groups = manual_macro_groups(design, spec)
    allocation = manual_allocation(design, spec, budget, model)
    evaluator = PerformanceEvaluator(spec, budget)
    result = evaluator.evaluate(macro_groups, allocation)

    gene = encode_gene(
        range(spec.num_layers), [len(g) for g in macro_groups]
    )
    return SynthesisSolution(
        model_name=f"{model.name}@{design.name}",
        total_power=total_power,
        ratio_rram=ratio,
        res_rram=design.res_rram,
        xb_size=design.xb_size,
        res_dac=design.res_dac,
        wt_dup=tuple(wt_dup),
        partition=MacroPartition.from_gene(gene),
        allocation=allocation,
        evaluation=result,
        spec=spec,
        budget=budget,
    )
