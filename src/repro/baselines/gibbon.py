"""Gibbon (Sun et al., TCAD 2023) surrogate for the Table V comparison.

Gibbon co-explores CNN models and PIM architectures, but — as the paper
stresses in §V-C1 — it does *not* duplicate weights, and its
architecture template uses uniform tiles. We cannot run the
closed-source framework; the surrogate evaluates a Gibbon-style design
(no duplication, identical macro provisioning, ISAAC-class analog
parameters) under our component library, and
:func:`gibbon_published` exposes the paper's own Table V rows so benches
report both. The qualitative claim under test: PIMSYN wins EDP and
latency everywhere, and may spend *more* energy on VGG16/ResNet18
(it trades energy for speed).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines.common import ManualDesign
from repro.baselines.specs import PUBLISHED_TABLE5


def gibbon_design() -> ManualDesign:
    """A Gibbon-style fixed design (no duplication, uniform tiles)."""
    return ManualDesign(
        name="gibbon",
        xb_size=128,
        res_rram=2,
        res_dac=2,
        adcs_per_crossbar=0.5,
        crossbars_per_macro=16,  # Gibbon's small uniform tiles
        alus_per_macro=8,
        adc_resolution=None,
        wtdup_policy="none",  # "existing works do not involve weight
        # duplication" (§V-C1)
    )


def gibbon_published(metric: str) -> Dict[str, Tuple[float, float]]:
    """Published (gibbon, pimsyn) pairs for ``metric`` in Table V.

    ``metric`` is one of ``"edp"``, ``"energy"``, ``"latency"``.
    """
    if metric not in PUBLISHED_TABLE5:
        raise KeyError(
            f"unknown Table V metric {metric!r}; "
            f"choices: {sorted(PUBLISHED_TABLE5)}"
        )
    return dict(PUBLISHED_TABLE5[metric])
