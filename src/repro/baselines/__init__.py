"""Baseline accelerators and heuristics the paper compares against.

Two kinds of reference data live here:

1. **Re-modeled designs** — ISAAC, PipeLayer, PRIME, PUMA and AtomLayer
   rebuilt from their published architecture parameters and evaluated
   with *this* package's component library and evaluator, so PIMSYN and
   the baselines are scored by one consistent model (the comparison's
   shape is meaningful even though absolute numbers differ from the
   authors' testbeds). A Gibbon-style surrogate covers Table V.
2. **Published numbers** — the exact figures the paper reports
   (Table IV peak TOPS/W, Table V Gibbon rows), kept in
   :mod:`repro.baselines.specs` so every bench can print
   paper-vs-measured side by side.

:mod:`repro.baselines.heuristics` holds the WOHO-proportional and
no-duplication weight-duplication policies of Fig. 7.
"""

from repro.baselines.common import ManualDesign, build_manual_solution
from repro.baselines.heuristics import (
    no_duplication_wtdup,
    woho_proportional_wtdup,
)
from repro.baselines.isaac import isaac_design
from repro.baselines.pipelayer import pipelayer_design
from repro.baselines.prime import prime_design
from repro.baselines.puma import puma_design
from repro.baselines.atomlayer import atomlayer_design
from repro.baselines.gibbon import gibbon_design, gibbon_published
from repro.baselines.specs import (
    PUBLISHED_PEAK_TOPS_PER_WATT,
    PUBLISHED_TABLE5,
)

__all__ = [
    "ManualDesign",
    "build_manual_solution",
    "no_duplication_wtdup",
    "woho_proportional_wtdup",
    "isaac_design",
    "pipelayer_design",
    "prime_design",
    "puma_design",
    "atomlayer_design",
    "gibbon_design",
    "gibbon_published",
    "PUBLISHED_PEAK_TOPS_PER_WATT",
    "PUBLISHED_TABLE5",
]
