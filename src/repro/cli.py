"""Command-line interface: ``python -m repro <command>``.

The paper pitches PIMSYN as "one-click transformation from CNN
applications to PIM architectures"; the CLI is that click:

- ``python -m repro models [--json]`` — list the built-in model zoo;
- ``python -m repro synthesize --model vgg16 --power 200`` — run the
  DSE and print/save the solution;
- ``python -m repro simulate --model vgg16 --cycle`` — replay the
  synthesized design on the integer-cycle pipelined simulator,
  cross-validate it against the analytical model, and (with
  ``--fault-rate``) inject deterministic crossbar/NoC faults;
- ``python -m repro peak`` — the Table IV peak-efficiency comparison;
- ``python -m repro sweep --model alexnet_cifar --powers 2 4 8`` —
  power-constraint sweep;
- ``python -m repro serve --store DIR`` — the persistent synthesis
  service (job queue + content-addressed result store + JSON API);
- ``python -m repro batch --manifest sweep.yaml --store DIR`` — run a
  (model x power x config) manifest through the shared store;
- ``python -m repro store stats|gc|migrate --store DIR`` — inspect a
  result store, compact it (stale claims, dead memos), or move a
  legacy flat-layout store into the sharded layout;
- ``python -m repro tech list|show|export|compare`` — the device-
  technology registry: inspect profiles, export/load the JSON format,
  synthesize one model under every technology. ``--tech NAME`` on
  ``synthesize``/``sweep``/``peak``/``serve`` selects the device;
- ``python -m repro backends`` — the array-backend registry that
  executes the tensorized task-grid walk. ``--backend NAME`` on
  ``synthesize``/``sweep`` selects one (execution-only: never changes
  the solution or any content key).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.errors import PimsynError, SynthesisInterrupted
from repro.hardware.params import HardwareParams
from repro.hardware.tech import (
    DEFAULT_TECHNOLOGY,
    available_technologies,
    get_technology,
    load_technology,
)
from repro.nn import zoo
from repro.nn.onnx_io import load_model


def _load(args) -> object:
    """Resolve the model from --model (zoo) or --json (file)."""
    if getattr(args, "json", None):
        return load_model(args.json)
    return zoo.by_name(args.model)


def _tech(args) -> str:
    """Resolve --tech / --tech-file into a registered profile name.

    A --tech-file profile is registered first, so --tech may name it;
    with --tech-file alone, the loaded profile becomes the run's
    technology.
    """
    tech = getattr(args, "tech", None) or DEFAULT_TECHNOLOGY
    tech_file = getattr(args, "tech_file", None)
    if tech_file:
        profile = load_technology(tech_file, replace=True)
        if getattr(args, "tech", None) is None:
            tech = profile.name
    get_technology(tech)  # fail fast on unknown names
    return tech


def _config(args, power: float) -> SynthesisConfig:
    jobs = getattr(args, "jobs", 1)
    batch_eval = not getattr(args, "scalar_eval", False)
    extras = {"tech": _tech(args)}
    if getattr(args, "scalar_bounds", False):
        extras["grid_eval"] = False
    if getattr(args, "backend", None):
        extras["backend"] = args.backend
    if getattr(args, "engine", None):
        extras["sim_engine"] = args.engine
    if getattr(args, "pareto", False):
        extras["pareto"] = True
    if getattr(args, "objectives", None):
        extras["objectives"] = tuple(args.objectives)
    if getattr(args, "full", False):
        return SynthesisConfig(
            total_power=power, seed=args.seed, jobs=jobs,
            batch_eval=batch_eval, **extras,
        )
    return SynthesisConfig.fast(
        total_power=power, seed=args.seed, jobs=jobs,
        batch_eval=batch_eval, **extras,
    )


def cmd_models(args) -> int:
    import json

    catalog = zoo.model_catalog()
    if getattr(args, "json", False):
        print(json.dumps({"models": catalog}, indent=2))
        return 0
    rows = [
        (
            entry["name"], str(tuple(entry["input_shape"])),
            entry["weighted_layers"],
            f"{entry['gmacs']:.3f}",
            f"{entry['million_weights']:.2f}",
        )
        for entry in catalog
    ]
    print(format_table(
        ["model", "input", "weighted layers", "GMACs", "Mweights"],
        rows, title="built-in model zoo",
    ))
    return 0


def cmd_synthesize(args) -> int:
    model = _load(args)
    if args.power is not None:
        power = args.power
    else:
        probe = SynthesisConfig.fast(tech=_tech(args))
        power = DesignSpace(model, probe).minimum_feasible_power(
            margin=args.margin
        )
        print(f"no --power given; using feasibility floor x "
              f"{args.margin} = {power:.1f} W")
    config = _config(args, power)
    if getattr(args, "front_csv", None) and not config.pareto:
        print("--front-csv requires --pareto", file=sys.stderr)
        return 2
    progress = print if args.verbose else None
    synthesizer = Pimsyn(model, config, progress=progress)
    front = None
    if config.pareto:
        front = synthesizer.synthesize_pareto()
        solution = front.solution
        print(front.front_table())
        print()
        print("best point (first objective):")
    else:
        solution = synthesizer.synthesize()
    print(solution.summary())
    if args.verbose:
        report = synthesizer.report
        nsga = (
            f"{report.nsga_runs} NSGA-II runs, " if report.nsga_runs
            else ""
        )
        print(
            f"  DSE: {report.outer_points} outer points, "
            f"{report.ea_runs} EA runs ({report.pruned_tasks} pruned), "
            f"{nsga}"
            f"{report.cache_hits} cache hits / "
            f"{report.cache_misses} misses, jobs={report.jobs}, "
            f"{report.wall_seconds:.2f} s"
        )
    if args.chip:
        print()
        print(solution.build_accelerator().summary())
    if args.out:
        document = front.to_json() if front is not None \
            else solution.to_json()
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        artifact = "front" if front is not None else "solution"
        print(f"\n{artifact} written to {args.out}")
    if getattr(args, "front_csv", None) and front is not None:
        with open(args.front_csv, "w", encoding="utf-8") as handle:
            handle.write(front.to_csv())
        print(f"front CSV written to {args.front_csv}")
    if args.schedule:
        from repro.sim import SimulationEngine
        from repro.sim.schedule import export_schedule

        engine = SimulationEngine(
            spec=solution.spec, allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        trace = engine.run(solution.build_dag())
        schedule = export_schedule(
            trace, solution.partition.macro_groups
        )
        with open(args.schedule, "w", encoding="utf-8") as handle:
            handle.write(schedule.to_json())
        print(f"dataflow schedule written to {args.schedule} "
              f"({schedule.total_steps} control steps)")
    return 0


def cmd_simulate(args) -> int:
    """Synthesize (or reuse) a design and replay it on a simulator."""
    model = _load(args)
    if args.power is not None:
        power = args.power
    else:
        probe = SynthesisConfig.fast(tech=_tech(args))
        power = DesignSpace(model, probe).minimum_feasible_power(
            margin=args.margin
        )
        print(f"no --power given; using feasibility floor x "
              f"{args.margin} = {power:.1f} W")
    config = _config(args, power)
    progress = print if args.verbose else None
    solution = Pimsyn(model, config, progress=progress).synthesize()
    print(solution.summary())
    print()

    if not args.cycle:
        if args.fault_rate:
            print("error: --fault-rate requires --cycle (the windowed "
                  "engine has no fault model)", file=sys.stderr)
            return 2
        if args.engine:
            print("error: --engine requires --cycle (the windowed "
                  "engine has no event wheel to select)",
                  file=sys.stderr)
            return 2
        engine = solution.simulation_engine()
        trace = engine.run(solution.build_dag())
        from repro.sim.metrics import extrapolate

        metrics = extrapolate(trace, solution.spec)
        print(f"windowed simulation - {model.name}")
        print(f"  throughput        {metrics.throughput:.2f} img/s "
              f"({metrics.tops:.3f} TOPS)")
        print(f"  latency           {metrics.latency:.3e} s")
        print(f"  bottleneck        layer {metrics.bottleneck_layer}")
        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                handle.write(trace.to_jsonl() + "\n")
            print(f"trace written to {args.trace_out} "
                  f"({len(trace)} scheduled IRs)")
        return 0

    from repro.sim.cycle import resolve_engine_name

    simulator = solution.cycle_simulator(
        fault_rate=args.fault_rate, fault_seed=args.fault_seed,
        engine=config.sim_engine,
    )
    print(f"cycle engine: {resolve_engine_name(config.sim_engine)}"
          + (" (auto)" if config.sim_engine == "auto" else ""))
    result = simulator.run()
    print(result.report.summary())
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(result.trace.to_jsonl() + "\n")
        print(f"trace written to {args.trace_out} "
              f"({len(result.trace)} scheduled IRs)")
    if args.report_out:
        import json

        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(result.report.to_payload(), handle, indent=2)
        print(f"cycle report written to {args.report_out}")
    if args.fault_rate == 0.0:
        validation = solution.cross_validate(
            tol=args.tol, engine=config.sim_engine
        )
        print()
        print(f"cross-validation vs analytical model "
              f"(tol {validation.tolerance:.3f}):")
        print(f"  throughput dev    "
              f"{validation.throughput_deviation:.4f}")
        print(f"  energy dev        {validation.energy_deviation:.4f}")
        validation.ensure()
        print("  agreement         OK")
    else:
        print()
        print("cross-validation skipped (fault injection active; the "
              "analytical model has no fault semantics)")
    return 0


def cmd_peak(args) -> int:
    from repro.baselines import (
        atomlayer_design,
        isaac_design,
        pipelayer_design,
        prime_design,
        puma_design,
    )
    from repro.baselines.specs import PUBLISHED_PEAK_TOPS_PER_WATT
    from repro.hardware.peak import best_matched_peak

    params = HardwareParams.from_technology(_tech(args))
    best = best_matched_peak(params)
    rows = [(
        "pimsyn", round(best.tops_per_watt, 3),
        PUBLISHED_PEAK_TOPS_PER_WATT["pimsyn"],
        f"xb={best.xb_size} rram={best.res_rram} dac={best.res_dac}",
    )]
    for fn in (pipelayer_design, isaac_design, prime_design,
               puma_design, atomlayer_design):
        design = fn()
        point = design.peak_point(params)
        rows.append((
            design.name, round(point.tops_per_watt, 3),
            PUBLISHED_PEAK_TOPS_PER_WATT[design.name],
            f"xb={design.xb_size} rram={design.res_rram} "
            f"dac={design.res_dac}",
        ))
    print(format_table(
        ["design", "measured TOPS/W", "paper TOPS/W", "config"], rows,
        title="peak power efficiency (Table IV)",
    ))
    return 0


def cmd_sweep(args) -> int:
    from repro.analysis import power_sweep

    model = _load(args)
    extras = {}
    if getattr(args, "scalar_bounds", False):
        extras["grid_eval"] = False
    if getattr(args, "backend", None):
        extras["backend"] = args.backend
    config = SynthesisConfig.fast(
        seed=args.seed, jobs=getattr(args, "jobs", 1),
        batch_eval=not getattr(args, "scalar_eval", False),
        tech=_tech(args), **extras,
    )
    rows = power_sweep(model, args.powers, config=config)
    table = [
        (
            f"{r.total_power:.2f}",
            "yes" if r.feasible else "no",
            round(r.throughput, 1) if r.feasible else "-",
            round(r.tops_per_watt, 4) if r.feasible else "-",
            r.num_macros if r.feasible else "-",
        )
        for r in rows
    ]
    print(format_table(
        ["power (W)", "feasible", "img/s", "TOPS/W", "macros"],
        table, title=f"power sweep - {model.name}",
    ))
    return 0


def _install_sigterm_handler() -> None:
    """Make SIGTERM behave like Ctrl-C so the engine's graceful
    interrupt path (pool teardown + partial-memo persistence) runs
    under process supervisors too."""
    import signal

    def _raise_interrupt(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:
        pass  # not the main thread (embedded use); Ctrl-C still works


def cmd_serve(args) -> int:
    import threading

    from repro.serve import JobScheduler, ResultStore, make_server

    store = ResultStore(args.store, shards=args.shards)
    scheduler = JobScheduler(
        store, workers=args.workers, synth_jobs=args.jobs,
        name="serve", default_tech=_tech(args),
        max_queue_depth=args.max_queue,
    )
    server = make_server(
        args.host, args.port, scheduler, store,
        verbose=args.verbose, kind=args.server, quota=args.quota,
        reuse_port=args.reuse_port,
    )
    host, port = server.server_address[:2]
    print(f"synthesis service on http://{host}:{port} "
          f"({args.server} front end)")
    print(f"  store: {store.root}  "
          f"({store.stats(include_models=False).results} results in "
          f"{store.num_shards} shards)")
    print(f"  workers: {args.workers}  DSE jobs/worker: {args.jobs}  "
          f"default tech: {scheduler.default_tech}")
    print(f"  queue bound: {args.max_queue or 'unbounded'}  "
          f"client quota: {args.quota or 'unbounded'}")
    print("  POST /jobs   GET /jobs/<id>   GET /results/<key>   "
          "GET /store/stats   GET /scheduler/stats   POST /store/gc")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        thread.join()
    except KeyboardInterrupt:
        print("\nshutting down (waiting for running jobs)...")
    finally:
        server.shutdown()
        scheduler.shutdown(wait=True)
    stats = store.stats(include_models=False)
    print(f"store: {stats.results} results, {stats.hits} hits, "
          f"{stats.misses} misses this session")
    return 0


def cmd_batch(args) -> int:
    import json

    from repro.serve import ResultStore, run_batch_file

    store = ResultStore(args.store)
    progress = print if args.verbose else None
    report = run_batch_file(
        args.manifest, store,
        workers=args.workers, synth_jobs=args.jobs,
        progress=progress,
    )
    print(report.to_table())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2)
        print(f"\nbatch report written to {args.out}")
    return 1 if report.failures else 0


def cmd_store(args) -> int:
    import json

    from repro.serve import ResultStore

    store = ResultStore(args.store)
    if args.store_command == "stats":
        stats = store.stats(include_models=True)
        print(json.dumps(stats.to_payload(), indent=2))
        return 0
    if args.store_command == "gc":
        report = store.gc(
            stale_claims_after=args.stale_after,
            drop_completed_memos=not args.keep_memos,
        )
        print(json.dumps(report.to_payload(), indent=2))
        return 0
    if args.store_command == "migrate":
        report = store.migrate()
        print(json.dumps(report.to_payload(), indent=2))
        print(f"store now sharded x{store.num_shards} at {store.root}")
        return 0
    raise PimsynError(f"unknown store command {args.store_command!r}")


def cmd_tech(args) -> int:
    import json

    if args.tech_file:
        load_technology(args.tech_file, replace=True)
    command = args.tech_command
    if command == "list":
        rows = []
        for name in available_technologies():
            profile = get_technology(name)
            rows.append((
                name, profile.cell,
                "/".join(str(c) for c in profile.res_rram_choices),
                "/".join(str(x) for x in profile.xb_size_choices),
                f"{profile.adc_resolution_range[0]}-"
                f"{profile.adc_resolution_range[1]}",
                profile.description,
            ))
        print(format_table(
            ["technology", "cell", "ResRram", "XbSize", "ADC bits",
             "description"],
            rows, title="registered device technologies",
        ))
        return 0
    if command == "show":
        profile = get_technology(args.name)
        rows = [
            ("cell", profile.cell),
            ("crossbar latency", f"{profile.crossbar_latency:.3e} s"),
            ("crossbar power", ", ".join(
                f"{k}: {v * 1e3:.3g} mW"
                for k, v in sorted(profile.crossbar_power.items())
            )),
            ("ADC sample rate", f"{profile.adc_sample_rate:.3e} S/s"),
            ("ADC range", f"{profile.adc_resolution_range[0]}-"
                          f"{profile.adc_resolution_range[1]} bits"),
            ("DAC power", ", ".join(
                f"{k}: {v * 1e6:.3g} uW"
                for k, v in sorted(profile.dac_power.items())
            )),
            ("eDRAM", f"{profile.edram_size_bytes // 1024} KB @ "
                      f"{profile.edram_power * 1e3:.3g} mW"),
            ("NoC router", f"{profile.noc_power * 1e3:.3g} mW"),
            ("XbSize domain", str(profile.xb_size_choices)),
            ("ResRram domain", str(profile.res_rram_choices)),
            ("ResDAC domain", str(profile.res_dac_choices)),
            ("RatioRram domain", str(profile.ratio_rram_choices)),
            ("precision", f"act {profile.act_precision} / weight "
                          f"{profile.weight_precision} bits"),
        ]
        print(format_table(
            ["constant", "value"], rows,
            title=f"technology {profile.name} - {profile.description}",
        ))
        return 0
    if command == "export":
        profile = get_technology(args.name)
        document = profile.to_json()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
            print(f"technology {profile.name!r} written to {args.out}")
        else:
            print(document)
        return 0
    if command == "compare":
        from repro.analysis import tech_compare_table, technology_sweep

        model = _load(args)
        rows = technology_sweep(
            model,
            total_power=args.power,
            techs=args.techs,
            seed=args.seed,
            margin=args.margin,
        )
        print(tech_compare_table(rows, model_name=model.name))
        if args.out:
            payload = {
                "model": model.name,
                "rows": [r.__dict__ for r in rows],
            }
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"\ncomparison written to {args.out}")
        return 0
    raise PimsynError(f"unknown tech command {command!r}")


def cmd_backends(args) -> int:
    from repro.core.backend import backend_status, get_backend

    rows = []
    for name, ok, detail in backend_status():
        default = "*" if name == SynthesisConfig().backend else ""
        rows.append((
            name, "yes" if ok else "no", default, detail,
        ))
    print(format_table(
        ["backend", "available", "default", "description / reason"],
        rows, title="registered array backends (execution-only)",
    ))
    if getattr(args, "check", None):
        backend = get_backend(args.check)  # raises if not usable
        print(f"backend {args.check!r} is available")
        _backend_probe(backend)
    return 0


def _backend_probe(backend) -> None:
    """Score a real population on ``backend`` and hold it to its
    declared contract against the pure-python oracle: ``==`` for exact
    engines, the documented relative tolerance for GPU ones. Raises
    PimsynError on divergence — `repro backends --check NAME` is the
    one-command way to validate a box's accelerator stack."""
    import random as _random

    from repro.core.backend import get_backend, numpy_available
    from repro.core.batch_eval import BatchPerformanceEvaluator
    from repro.core.dataflow import make_spec
    from repro.core.macro_partition import MacroPartitionExplorer
    from repro.hardware.power import PowerBudget
    from repro.nn import lenet5

    if not numpy_available():
        print("conformance probe skipped: numpy unavailable")
        return
    import numpy as np

    model = lenet5()
    config = SynthesisConfig.fast(total_power=2.0)
    n = model.num_weighted_layers
    spec = make_spec(
        model, [1] * n, xb_size=128, res_rram=2, res_dac=1,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=2.0, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=4096,
    )
    explorer = MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=1, config=config,
        rng=_random.Random(3),
    )
    genes = explorer.initial_population(16)
    candidate = BatchPerformanceEvaluator(
        spec, budget, 1, backend=backend,
    ).evaluate_population(genes)
    oracle = BatchPerformanceEvaluator(
        spec, budget, 1, backend="python",
    ).evaluate_population(genes)
    exact_fields = ("feasible", "bottleneck_layer", "num_macros")
    float_fields = (
        "fitness", "period", "latency", "throughput", "tops",
        "power", "tops_per_watt", "energy_per_image", "edp",
    )
    for field in exact_fields:
        if not np.array_equal(
            np.asarray(getattr(candidate, field)),
            np.asarray(getattr(oracle, field)),
        ):
            raise PimsynError(
                f"backend {backend.name!r} failed the batch-eval "
                f"conformance probe: {field} diverges from the "
                f"python oracle"
            )
    for field in float_fields:
        got = np.asarray(getattr(candidate, field), dtype=np.float64)
        want = np.asarray(getattr(oracle, field), dtype=np.float64)
        if backend.exact:
            ok = bool(np.array_equal(got, want))
        else:
            denom = np.maximum(np.abs(want), 1.0)
            ok = bool(np.all(
                np.abs(got - want) <= backend.float_tolerance * denom
            ))
        if not ok:
            raise PimsynError(
                f"backend {backend.name!r} failed the batch-eval "
                f"conformance probe: {field} outside the "
                f"{'exact' if backend.exact else 'tolerance'} contract"
            )
    contract = "bit-identical" if backend.exact else (
        f"within {backend.float_tolerance:g} relative"
    )
    print(
        f"conformance probe passed: {len(genes)}-gene population "
        f"scored {contract} vs the python oracle"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIMSYN: synthesize PIM CNN accelerators",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser(
        "models", help="list the built-in model zoo"
    )
    models.add_argument("--json", action="store_true",
                        help="machine-readable output for scripted "
                             "clients and batch manifests")
    peak = sub.add_parser(
        "peak", help="Table IV peak-efficiency comparison"
    )
    peak.add_argument("--tech", default=None,
                      help="device-technology profile for the PIMSYN "
                           "column (default: reram; see `repro tech "
                           "list`)")

    synth = sub.add_parser("synthesize", help="run the synthesis DSE")
    group = synth.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", help="zoo model name")
    group.add_argument("--json", help="path to a model JSON document")
    synth.add_argument("--power", type=float, default=None,
                       help="total power constraint in watts")
    synth.add_argument("--margin", type=float, default=2.0,
                       help="feasibility-floor multiplier when --power "
                            "is omitted")
    synth.add_argument("--full", action="store_true",
                       help="use the paper's full Table I grid "
                            "(slow; default is the fast preset)")
    synth.add_argument("--tech", default=None,
                       help="device-technology profile to synthesize "
                            "for (default: reram; see `repro tech "
                            "list`)")
    synth.add_argument("--tech-file",
                       help="register a technology profile from this "
                            "JSON document first (the `repro tech "
                            "export` format)")
    synth.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the DSE (0 = one per "
                            "CPU core; same solution as --jobs 1)")
    synth.add_argument("--scalar-eval", action="store_true",
                       help="score EA populations gene-by-gene instead "
                            "of through the numpy batch engine (same "
                            "solution, slower; mainly for debugging)")
    synth.add_argument("--scalar-bounds", action="store_true",
                       help="bound/prune the outer task grid per task "
                            "instead of through the tensorized grid "
                            "walk (same solution, slower)")
    synth.add_argument("--backend", default=None,
                       help="array backend for the tensorized grid "
                            "walk (default: numpy; see `repro "
                            "backends`; execution-only)")
    synth.add_argument("--pareto", action="store_true",
                       help="multi-objective mode: print the Pareto "
                            "front over --objectives instead of a "
                            "single best design")
    synth.add_argument("--objectives", nargs="+", metavar="METRIC",
                       help="pareto objectives (default: throughput "
                            "energy_per_image num_macros); see "
                            "repro.core.config.OBJECTIVE_SENSES")
    synth.add_argument("--front-csv",
                       help="write the Pareto front as CSV here "
                            "(requires --pareto)")
    synth.add_argument("--seed", type=int, default=2024)
    synth.add_argument("--out", help="write the solution JSON here")
    synth.add_argument("--schedule",
                       help="write the per-macro dataflow schedule "
                            "JSON here")
    synth.add_argument("--chip", action="store_true",
                       help="print the per-macro hardware inventory")
    synth.add_argument("--verbose", action="store_true")

    simulate = sub.add_parser(
        "simulate",
        help="replay a synthesized design on a simulator "
             "(windowed engine, or --cycle for the integer-cycle "
             "pipelined machine with cross-validation and fault "
             "injection)",
    )
    group = simulate.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", help="zoo model name")
    group.add_argument("--json", help="path to a model JSON document")
    simulate.add_argument("--power", type=float, default=None,
                          help="total power constraint in watts")
    simulate.add_argument("--margin", type=float, default=2.0,
                          help="feasibility-floor multiplier when "
                               "--power is omitted")
    simulate.add_argument("--tech", default=None,
                          help="device-technology profile (default: "
                               "reram)")
    simulate.add_argument("--tech-file",
                          help="register a technology profile from "
                               "this JSON document first")
    simulate.add_argument("--cycle", action="store_true",
                          help="use the cycle-level pipelined "
                               "simulator (micro-ops, occupancy "
                               "timelines, NoC link contention) and "
                               "cross-validate against the analytical "
                               "model")
    from repro.sim.cycle import engine_status

    engine_help = "; ".join(
        f"{name}: {'available' if ok else 'UNAVAILABLE'}"
        for name, ok, _ in engine_status()
    )
    simulate.add_argument("--engine", default=None,
                          help="cycle event-wheel engine (requires "
                               "--cycle; default auto = fastest "
                               "available; all engines are ==-exact, "
                               "the choice only moves wall time). "
                               "Registered: " + engine_help)
    simulate.add_argument("--fault-rate", type=float, default=0.0,
                          help="per-attempt fault probability for "
                               "crossbar reads and NoC traffic "
                               "(stall-and-retry; requires --cycle)")
    simulate.add_argument("--fault-seed", type=int, default=2024,
                          help="seed of the deterministic fault draws")
    simulate.add_argument("--tol", type=float, default=None,
                          help="cross-validation tolerance (default: "
                               "the stated zoo-calibrated bound); "
                               "exceeding it exits non-zero")
    simulate.add_argument("--trace-out",
                          help="write the execution trace as JSONL "
                               "here (one scheduled IR per line; "
                               "both engines)")
    simulate.add_argument("--report-out",
                          help="write the cycle report JSON here "
                               "(requires --cycle)")
    simulate.add_argument("--seed", type=int, default=2024)
    simulate.add_argument("--verbose", action="store_true")

    sweep = sub.add_parser("sweep", help="power-constraint sweep")
    group = sweep.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", help="zoo model name")
    group.add_argument("--json", help="path to a model JSON document")
    sweep.add_argument("--powers", type=float, nargs="+", required=True)
    sweep.add_argument("--tech", default=None,
                       help="device-technology profile (default: "
                            "reram)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes per synthesis (0 = one "
                            "per CPU core)")
    sweep.add_argument("--scalar-eval", action="store_true",
                       help="disable the numpy batch evaluator "
                            "(same results, slower)")
    sweep.add_argument("--scalar-bounds", action="store_true",
                       help="disable the tensorized task-grid walk "
                            "(same results, slower)")
    sweep.add_argument("--backend", default=None,
                       help="array backend for the grid walk "
                            "(see `repro backends`)")
    sweep.add_argument("--seed", type=int, default=2024)

    serve = sub.add_parser(
        "serve", help="run the persistent synthesis service"
    )
    serve.add_argument("--store", default=".pimsyn-store",
                       help="result-store directory (shared, "
                            "content-addressed)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8173,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--workers", type=int, default=1,
                       help="concurrent jobs (worker threads)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="DSE worker processes per job (0 = one "
                            "per CPU core)")
    serve.add_argument("--tech", default=None,
                       help="default technology for requests that do "
                            "not specify one (default: reram)")
    serve.add_argument("--server", default="async",
                       choices=("async", "threaded"),
                       help="HTTP front end: single-event-loop "
                            "asyncio (default) or the legacy "
                            "thread-per-connection baseline")
    serve.add_argument("--shards", type=int, default=None,
                       help="shard count when creating a new store "
                            "(an existing store keeps its own)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="bound the job queue; submissions past "
                            "it get 429 + Retry-After (default: "
                            "unbounded)")
    serve.add_argument("--quota", type=int, default=None,
                       help="max concurrently active jobs per client "
                            "(X-Client-Id header / peer address)")
    serve.add_argument("--reuse-port", action="store_true",
                       help="set SO_REUSEPORT so several serve "
                            "processes can share the port (async "
                            "front end only)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")

    batch = sub.add_parser(
        "batch", help="run a (model x power x config) manifest"
    )
    batch.add_argument("--manifest", required=True,
                       help="YAML or JSON manifest path")
    batch.add_argument("--store", default=".pimsyn-store",
                       help="result-store directory (shared with "
                            "`repro serve`)")
    batch.add_argument("--workers", type=int, default=1,
                       help="concurrent jobs (worker threads)")
    batch.add_argument("--jobs", type=int, default=1,
                       help="DSE worker processes per job")
    batch.add_argument("--out", help="write the JSON batch report here")
    batch.add_argument("--verbose", action="store_true")

    store = sub.add_parser(
        "store", help="inspect and maintain a result store"
    )
    store_dir = argparse.ArgumentParser(add_help=False)
    store_dir.add_argument("--store", default=".pimsyn-store",
                           help="result-store directory")
    store_sub = store.add_subparsers(
        dest="store_command", required=True
    )
    store_sub.add_parser(
        "stats", help="store counters + per-model inventory",
        parents=[store_dir],
    )
    gc = store_sub.add_parser(
        "gc", help="compact: drop stale claims, completed-job memos, "
                   "leaked temp files",
        parents=[store_dir],
    )
    gc.add_argument("--stale-after", type=float, default=600.0,
                    help="claims older than this many seconds are "
                         "presumed orphaned")
    gc.add_argument("--keep-memos", action="store_true",
                    help="keep memo snapshots even when their result "
                         "exists")
    store_sub.add_parser(
        "migrate", help="move a legacy flat-layout store into the "
                        "sharded layout (byte-identical documents)",
        parents=[store_dir],
    )

    tech = sub.add_parser(
        "tech", help="inspect and compare device-technology profiles"
    )
    tech.add_argument("--tech-file",
                      help="register a technology profile from this "
                           "JSON document first")
    tech_sub = tech.add_subparsers(dest="tech_command", required=True)
    tech_sub.add_parser(
        "list", help="registered profiles and their domains"
    )
    show = tech_sub.add_parser(
        "show", help="one profile's constants and domains"
    )
    show.add_argument("name")
    export = tech_sub.add_parser(
        "export", help="write a profile's JSON document (the "
                       "--tech-file / load_technology format)"
    )
    export.add_argument("name")
    export.add_argument("--out", help="output path (default: stdout)")
    compare = tech_sub.add_parser(
        "compare", help="synthesize one model under every technology "
                        "and print the comparison table"
    )
    group = compare.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", help="zoo model name")
    group.add_argument("--json", help="path to a model JSON document")
    compare.add_argument("--power", type=float, default=None,
                         help="fixed power constraint (default: each "
                              "technology's feasibility floor x "
                              "--margin)")
    compare.add_argument("--margin", type=float, default=2.0)
    compare.add_argument("--techs", nargs="+", metavar="NAME",
                         help="profiles to compare (default: all "
                              "registered)")
    compare.add_argument("--seed", type=int, default=2024)
    compare.add_argument("--out",
                         help="write the comparison JSON here")

    backends = sub.add_parser(
        "backends", help="list the registered array backends"
    )
    backends.add_argument("--check", metavar="NAME",
                          help="exit non-zero unless NAME is usable "
                               "on this interpreter")
    return parser


_COMMANDS = {
    "models": cmd_models,
    "synthesize": cmd_synthesize,
    "simulate": cmd_simulate,
    "peak": cmd_peak,
    "sweep": cmd_sweep,
    "serve": cmd_serve,
    "batch": cmd_batch,
    "store": cmd_store,
    "tech": cmd_tech,
    "backends": cmd_backends,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _install_sigterm_handler()
    try:
        return _COMMANDS[args.command](args)
    except SynthesisInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130  # conventional SIGINT exit status
    except KeyboardInterrupt:
        # Ctrl-C outside the DSE engine (e.g. while a scheduler
        # thread owns the synthesis): exit quietly, no traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except PimsynError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
