"""Command-line interface: ``python -m repro <command>``.

The paper pitches PIMSYN as "one-click transformation from CNN
applications to PIM architectures"; the CLI is that click:

- ``python -m repro models [--json]`` — list the built-in model zoo;
- ``python -m repro synthesize --model vgg16 --power 200`` — run the
  DSE and print/save the solution;
- ``python -m repro peak`` — the Table IV peak-efficiency comparison;
- ``python -m repro sweep --model alexnet_cifar --powers 2 4 8`` —
  power-constraint sweep;
- ``python -m repro serve --store DIR`` — the persistent synthesis
  service (job queue + content-addressed result store + JSON API);
- ``python -m repro batch --manifest sweep.yaml --store DIR`` — run a
  (model x power x config) manifest through the shared store.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.errors import PimsynError, SynthesisInterrupted
from repro.hardware.params import HardwareParams
from repro.nn import zoo
from repro.nn.onnx_io import load_model


def _load(args) -> object:
    """Resolve the model from --model (zoo) or --json (file)."""
    if getattr(args, "json", None):
        return load_model(args.json)
    return zoo.by_name(args.model)


def _config(args, power: float) -> SynthesisConfig:
    jobs = getattr(args, "jobs", 1)
    batch_eval = not getattr(args, "scalar_eval", False)
    extras = {}
    if getattr(args, "pareto", False):
        extras["pareto"] = True
    if getattr(args, "objectives", None):
        extras["objectives"] = tuple(args.objectives)
    if getattr(args, "full", False):
        return SynthesisConfig(
            total_power=power, seed=args.seed, jobs=jobs,
            batch_eval=batch_eval, **extras,
        )
    return SynthesisConfig.fast(
        total_power=power, seed=args.seed, jobs=jobs,
        batch_eval=batch_eval, **extras,
    )


def cmd_models(args) -> int:
    import json

    catalog = zoo.model_catalog()
    if getattr(args, "json", False):
        print(json.dumps({"models": catalog}, indent=2))
        return 0
    rows = [
        (
            entry["name"], str(tuple(entry["input_shape"])),
            entry["weighted_layers"],
            f"{entry['gmacs']:.3f}",
            f"{entry['million_weights']:.2f}",
        )
        for entry in catalog
    ]
    print(format_table(
        ["model", "input", "weighted layers", "GMACs", "Mweights"],
        rows, title="built-in model zoo",
    ))
    return 0


def cmd_synthesize(args) -> int:
    model = _load(args)
    if args.power is not None:
        power = args.power
    else:
        probe = SynthesisConfig.fast()
        power = DesignSpace(model, probe).minimum_feasible_power(
            margin=args.margin
        )
        print(f"no --power given; using feasibility floor x "
              f"{args.margin} = {power:.1f} W")
    config = _config(args, power)
    if getattr(args, "front_csv", None) and not config.pareto:
        print("--front-csv requires --pareto", file=sys.stderr)
        return 2
    progress = print if args.verbose else None
    synthesizer = Pimsyn(model, config, progress=progress)
    front = None
    if config.pareto:
        front = synthesizer.synthesize_pareto()
        solution = front.solution
        print(front.front_table())
        print()
        print("best point (first objective):")
    else:
        solution = synthesizer.synthesize()
    print(solution.summary())
    if args.verbose:
        report = synthesizer.report
        nsga = (
            f"{report.nsga_runs} NSGA-II runs, " if report.nsga_runs
            else ""
        )
        print(
            f"  DSE: {report.outer_points} outer points, "
            f"{report.ea_runs} EA runs ({report.pruned_tasks} pruned), "
            f"{nsga}"
            f"{report.cache_hits} cache hits / "
            f"{report.cache_misses} misses, jobs={report.jobs}, "
            f"{report.wall_seconds:.2f} s"
        )
    if args.chip:
        print()
        print(solution.build_accelerator().summary())
    if args.out:
        document = front.to_json() if front is not None \
            else solution.to_json()
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        artifact = "front" if front is not None else "solution"
        print(f"\n{artifact} written to {args.out}")
    if getattr(args, "front_csv", None) and front is not None:
        with open(args.front_csv, "w", encoding="utf-8") as handle:
            handle.write(front.to_csv())
        print(f"front CSV written to {args.front_csv}")
    if args.schedule:
        from repro.sim import SimulationEngine
        from repro.sim.schedule import export_schedule

        engine = SimulationEngine(
            spec=solution.spec, allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        trace = engine.run(solution.build_dag())
        schedule = export_schedule(
            trace, solution.partition.macro_groups
        )
        with open(args.schedule, "w", encoding="utf-8") as handle:
            handle.write(schedule.to_json())
        print(f"dataflow schedule written to {args.schedule} "
              f"({schedule.total_steps} control steps)")
    return 0


def cmd_peak(_args) -> int:
    from repro.baselines import (
        atomlayer_design,
        isaac_design,
        pipelayer_design,
        prime_design,
        puma_design,
    )
    from repro.baselines.specs import PUBLISHED_PEAK_TOPS_PER_WATT
    from repro.hardware.peak import best_matched_peak

    params = HardwareParams()
    best = best_matched_peak(params)
    rows = [(
        "pimsyn", round(best.tops_per_watt, 3),
        PUBLISHED_PEAK_TOPS_PER_WATT["pimsyn"],
        f"xb={best.xb_size} rram={best.res_rram} dac={best.res_dac}",
    )]
    for fn in (pipelayer_design, isaac_design, prime_design,
               puma_design, atomlayer_design):
        design = fn()
        point = design.peak_point(params)
        rows.append((
            design.name, round(point.tops_per_watt, 3),
            PUBLISHED_PEAK_TOPS_PER_WATT[design.name],
            f"xb={design.xb_size} rram={design.res_rram} "
            f"dac={design.res_dac}",
        ))
    print(format_table(
        ["design", "measured TOPS/W", "paper TOPS/W", "config"], rows,
        title="peak power efficiency (Table IV)",
    ))
    return 0


def cmd_sweep(args) -> int:
    from repro.analysis import power_sweep

    model = _load(args)
    config = SynthesisConfig.fast(
        seed=args.seed, jobs=getattr(args, "jobs", 1),
        batch_eval=not getattr(args, "scalar_eval", False),
    )
    rows = power_sweep(model, args.powers, config=config)
    table = [
        (
            f"{r.total_power:.2f}",
            "yes" if r.feasible else "no",
            round(r.throughput, 1) if r.feasible else "-",
            round(r.tops_per_watt, 4) if r.feasible else "-",
            r.num_macros if r.feasible else "-",
        )
        for r in rows
    ]
    print(format_table(
        ["power (W)", "feasible", "img/s", "TOPS/W", "macros"],
        table, title=f"power sweep - {model.name}",
    ))
    return 0


def _install_sigterm_handler() -> None:
    """Make SIGTERM behave like Ctrl-C so the engine's graceful
    interrupt path (pool teardown + partial-memo persistence) runs
    under process supervisors too."""
    import signal

    def _raise_interrupt(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:
        pass  # not the main thread (embedded use); Ctrl-C still works


def cmd_serve(args) -> int:
    import threading

    from repro.serve import JobScheduler, ResultStore, make_server

    store = ResultStore(args.store)
    scheduler = JobScheduler(
        store, workers=args.workers, synth_jobs=args.jobs,
        name="serve",
    )
    server = make_server(
        args.host, args.port, scheduler, store, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(f"synthesis service on http://{host}:{port}")
    print(f"  store: {store.root}  "
          f"({store.stats(include_models=False).results} results)")
    print(f"  workers: {args.workers}  DSE jobs/worker: {args.jobs}")
    print("  POST /jobs   GET /jobs/<id>   GET /results/<key>   "
          "GET /store/stats")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        thread.join()
    except KeyboardInterrupt:
        print("\nshutting down (waiting for running jobs)...")
    finally:
        server.shutdown()
        scheduler.shutdown(wait=True)
    stats = store.stats(include_models=False)
    print(f"store: {stats.results} results, {stats.hits} hits, "
          f"{stats.misses} misses this session")
    return 0


def cmd_batch(args) -> int:
    import json

    from repro.serve import ResultStore, run_batch_file

    store = ResultStore(args.store)
    progress = print if args.verbose else None
    report = run_batch_file(
        args.manifest, store,
        workers=args.workers, synth_jobs=args.jobs,
        progress=progress,
    )
    print(report.to_table())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2)
        print(f"\nbatch report written to {args.out}")
    return 1 if report.failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIMSYN: synthesize PIM CNN accelerators",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser(
        "models", help="list the built-in model zoo"
    )
    models.add_argument("--json", action="store_true",
                        help="machine-readable output for scripted "
                             "clients and batch manifests")
    sub.add_parser("peak", help="Table IV peak-efficiency comparison")

    synth = sub.add_parser("synthesize", help="run the synthesis DSE")
    group = synth.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", help="zoo model name")
    group.add_argument("--json", help="path to a model JSON document")
    synth.add_argument("--power", type=float, default=None,
                       help="total power constraint in watts")
    synth.add_argument("--margin", type=float, default=2.0,
                       help="feasibility-floor multiplier when --power "
                            "is omitted")
    synth.add_argument("--full", action="store_true",
                       help="use the paper's full Table I grid "
                            "(slow; default is the fast preset)")
    synth.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the DSE (0 = one per "
                            "CPU core; same solution as --jobs 1)")
    synth.add_argument("--scalar-eval", action="store_true",
                       help="score EA populations gene-by-gene instead "
                            "of through the numpy batch engine (same "
                            "solution, slower; mainly for debugging)")
    synth.add_argument("--pareto", action="store_true",
                       help="multi-objective mode: print the Pareto "
                            "front over --objectives instead of a "
                            "single best design")
    synth.add_argument("--objectives", nargs="+", metavar="METRIC",
                       help="pareto objectives (default: throughput "
                            "energy_per_image num_macros); see "
                            "repro.core.config.OBJECTIVE_SENSES")
    synth.add_argument("--front-csv",
                       help="write the Pareto front as CSV here "
                            "(requires --pareto)")
    synth.add_argument("--seed", type=int, default=2024)
    synth.add_argument("--out", help="write the solution JSON here")
    synth.add_argument("--schedule",
                       help="write the per-macro dataflow schedule "
                            "JSON here")
    synth.add_argument("--chip", action="store_true",
                       help="print the per-macro hardware inventory")
    synth.add_argument("--verbose", action="store_true")

    sweep = sub.add_parser("sweep", help="power-constraint sweep")
    group = sweep.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", help="zoo model name")
    group.add_argument("--json", help="path to a model JSON document")
    sweep.add_argument("--powers", type=float, nargs="+", required=True)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes per synthesis (0 = one "
                            "per CPU core)")
    sweep.add_argument("--scalar-eval", action="store_true",
                       help="disable the numpy batch evaluator "
                            "(same results, slower)")
    sweep.add_argument("--seed", type=int, default=2024)

    serve = sub.add_parser(
        "serve", help="run the persistent synthesis service"
    )
    serve.add_argument("--store", default=".pimsyn-store",
                       help="result-store directory (shared, "
                            "content-addressed)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8173,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--workers", type=int, default=1,
                       help="concurrent jobs (worker threads)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="DSE worker processes per job (0 = one "
                            "per CPU core)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")

    batch = sub.add_parser(
        "batch", help="run a (model x power x config) manifest"
    )
    batch.add_argument("--manifest", required=True,
                       help="YAML or JSON manifest path")
    batch.add_argument("--store", default=".pimsyn-store",
                       help="result-store directory (shared with "
                            "`repro serve`)")
    batch.add_argument("--workers", type=int, default=1,
                       help="concurrent jobs (worker threads)")
    batch.add_argument("--jobs", type=int, default=1,
                       help="DSE worker processes per job")
    batch.add_argument("--out", help="write the JSON batch report here")
    batch.add_argument("--verbose", action="store_true")
    return parser


_COMMANDS = {
    "models": cmd_models,
    "synthesize": cmd_synthesize,
    "peak": cmd_peak,
    "sweep": cmd_sweep,
    "serve": cmd_serve,
    "batch": cmd_batch,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _install_sigterm_handler()
    try:
        return _COMMANDS[args.command](args)
    except SynthesisInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130  # conventional SIGINT exit status
    except KeyboardInterrupt:
        # Ctrl-C outside the DSE engine (e.g. while a scheduler
        # thread owns the synthesis): exit quietly, no traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except PimsynError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
