"""``python -m repro`` entry point.

Dispatches to :mod:`repro.cli` — the "one-click transformation from CNN
applications to PIM architectures" the paper promises in §I, packaged
as ``synthesize`` / ``models`` / ``peak`` / ``sweep`` subcommands.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
